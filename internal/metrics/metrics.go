// Package metrics is the simulator's deterministic observability
// substrate: a unified registry of named integer counters and gauges
// that every model component (simt engine, memory hierarchy, register
// file, DRS control, DMK and TBC baselines) registers into under
// hierarchical paths such as "smx3/l1d/accesses", plus a ring-buffered
// per-epoch time-series (series.go) and a Chrome-trace exporter
// (trace.go).
//
// Design constraints, in order:
//
//   - Zero overhead on the simulated hot path. Components keep
//     incrementing the plain int64 fields of their existing Stats
//     structs; the registry only stores pointers (or closures) that are
//     read at sampling and snapshot time. Registering a counter adds no
//     indirection to the code that bumps it.
//   - Bit determinism. The registry is integer-only (floats are derived
//     downstream by the reports), registration and snapshot orders are
//     fixed, and the JSON encodings are canonical (sorted paths, no
//     map iteration anywhere in this package), so a metrics dump of a
//     deterministic-engine run is a byte-exact regression artifact.
//   - Single-goroutine discipline. A Registry, Series or Trace is owned
//     by the engine goroutine that samples it; none of the types lock.
//     The epoch-barrier engine samples only at barriers, when no SMX
//     worker is running.
package metrics

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// probe reads one registered metric's current value.
type probe func() int64

// Registry is an ordered collection of named integer metrics. Paths are
// slash-separated lowercase segments ("smx3/l1d/accesses"); duplicate
// registration panics (it is always a wiring bug).
type Registry struct {
	names  []string
	byName map[string]int
	probes []probe
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// validPath reports whether p is a well-formed metric path: non-empty
// slash-separated segments of [a-z0-9_] characters.
func validPath(p string) bool {
	if p == "" {
		return false
	}
	segStart := true
	for i := 0; i < len(p); i++ {
		c := p[i]
		switch {
		case c == '/':
			if segStart {
				return false // empty segment
			}
			segStart = true
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			segStart = false
		default:
			return false
		}
	}
	return !segStart
}

func (r *Registry) register(path string, fn probe) {
	if !validPath(path) {
		panic(fmt.Sprintf("metrics: invalid path %q (want slash-separated [a-z0-9_] segments)", path))
	}
	if _, dup := r.byName[path]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", path))
	}
	r.byName[path] = len(r.names)
	r.names = append(r.names, path)
	r.probes = append(r.probes, fn)
}

// Counter registers a metric backed by an int64 the component keeps
// incrementing; the registry reads *v at snapshot time.
func (r *Registry) Counter(path string, v *int64) {
	if v == nil {
		panic(fmt.Sprintf("metrics: nil counter %q", path))
	}
	r.register(path, func() int64 { return *v })
}

// Gauge registers a metric computed on demand by fn.
func (r *Registry) Gauge(path string, fn func() int64) {
	if fn == nil {
		panic(fmt.Sprintf("metrics: nil gauge %q", path))
	}
	r.register(path, fn)
}

// Const registers a metric with a fixed value (run parameters such as
// the ray count, which belong in the dump for self-description).
func (r *Registry) Const(path string, v int64) {
	r.register(path, func() int64 { return v })
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int { return len(r.names) }

// Has reports whether path is registered.
func (r *Registry) Has(path string) bool {
	_, ok := r.byName[path]
	return ok
}

// Value returns the current value of the metric at path.
func (r *Registry) Value(path string) (int64, bool) {
	i, ok := r.byName[path]
	if !ok {
		return 0, false
	}
	return r.probes[i](), true
}

// RegisterStruct registers every exported integer field of the struct
// pointed to by p under prefix, naming each field by its lower-snake
// form ("WarpInstrs" -> prefix+"/warp_instrs"). Arrays of integers
// register one metric per element (prefix/field/0 ...); nested structs
// recurse with the field name as an extra path segment. Fields of other
// kinds (floats, strings, slices) are skipped: the registry is
// integer-only so dumps stay bit-exact. A `metrics:"-"` field tag skips
// the field; `metrics:"name"` overrides the derived name.
//
// The registered probes read the live fields through the pointer, so
// the component's ordinary struct updates are visible with no extra
// work on its side — this is the zero-overhead path for the scattered
// Stats structs the models already maintain.
func (r *Registry) RegisterStruct(prefix string, p any) {
	v := reflect.ValueOf(p)
	if v.Kind() != reflect.Pointer || v.IsNil() || v.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("metrics: RegisterStruct(%q) needs a non-nil struct pointer, got %T", prefix, p))
	}
	r.registerStructValue(prefix, v.Elem())
}

func (r *Registry) registerStructValue(prefix string, v reflect.Value) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := snakeCase(f.Name)
		if tag, ok := f.Tag.Lookup("metrics"); ok {
			if tag == "-" {
				continue
			}
			name = tag
		}
		path := prefix + "/" + name
		fv := v.Field(i)
		switch f.Type.Kind() {
		case reflect.Int64, reflect.Int, reflect.Int32:
			r.registerIntValue(path, fv)
		case reflect.Array:
			switch f.Type.Elem().Kind() {
			case reflect.Int64, reflect.Int, reflect.Int32:
				for k := 0; k < fv.Len(); k++ {
					r.registerIntValue(fmt.Sprintf("%s/%d", path, k), fv.Index(k))
				}
			}
		case reflect.Struct:
			r.registerStructValue(path, fv)
		}
	}
}

// registerIntValue registers one addressable integer field.
func (r *Registry) registerIntValue(path string, fv reflect.Value) {
	if !fv.CanAddr() {
		panic(fmt.Sprintf("metrics: %q is not addressable", path))
	}
	if ptr, ok := fv.Addr().Interface().(*int64); ok {
		r.Counter(path, ptr)
		return
	}
	r.register(path, fv.Int) // int / int32 fields read through reflect
}

// snakeCase converts an exported Go field name to lower_snake_case:
// "WarpInstrs" -> "warp_instrs", "SIInstrs" -> "si_instrs",
// "L1TexMiss" -> "l1_tex_miss".
func snakeCase(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 4)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			prevLower := i > 0 && isLowerDigit(s[i-1])
			nextLower := i+1 < len(s) && s[i+1] >= 'a' && s[i+1] <= 'z'
			if i > 0 && (prevLower || nextLower) {
				b.WriteByte('_')
			}
			b.WriteByte(c - 'A' + 'a')
			continue
		}
		b.WriteByte(c)
	}
	return b.String()
}

func isLowerDigit(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
}

// Snapshot captures every registered metric's value at one instant,
// sorted by path. It is the exchange format for dumps, golden files and
// determinism comparisons.
type Snapshot struct {
	Paths  []string
	Values []int64
}

// Snapshot reads every metric and returns the sorted capture.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Paths:  make([]string, len(r.names)),
		Values: make([]int64, len(r.names)),
	}
	order := make([]int, len(r.names))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return r.names[order[a]] < r.names[order[b]] })
	for out, i := range order {
		s.Paths[out] = r.names[i]
		s.Values[out] = r.probes[i]()
	}
	return s
}

// Get returns the captured value at path.
func (s *Snapshot) Get(path string) (int64, bool) {
	i := sort.SearchStrings(s.Paths, path)
	if i < len(s.Paths) && s.Paths[i] == path {
		return s.Values[i], true
	}
	return 0, false
}

// Len returns the number of captured metrics.
func (s *Snapshot) Len() int { return len(s.Paths) }

// MarshalJSON encodes the snapshot as a canonical flat JSON object:
// paths in sorted order, one numeric value each, no whitespace
// variance. The encoding is byte-identical for equal snapshots, so it
// doubles as a fingerprint and a golden-file format.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, p := range s.Paths {
		if i > 0 {
			buf.WriteByte(',')
		}
		fmt.Fprintf(&buf, "%q:%d", p, s.Values[i])
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

// UnmarshalJSON is intentionally not implemented: snapshots are a
// write-side artifact; comparisons happen on the canonical bytes.

// Diff returns a description of the first differing metric between two
// snapshots, or "" if they are identical. Used by determinism checks to
// name the exact counter that diverged.
func (s *Snapshot) Diff(o *Snapshot) string {
	i, j := 0, 0
	for i < len(s.Paths) && j < len(o.Paths) {
		a, b := s.Paths[i], o.Paths[j]
		switch {
		case a < b:
			return fmt.Sprintf("%s only in first snapshot", a)
		case a > b:
			return fmt.Sprintf("%s only in second snapshot", b)
		case s.Values[i] != o.Values[j]:
			return fmt.Sprintf("%s: %d vs %d", a, s.Values[i], o.Values[j])
		}
		i++
		j++
	}
	if i < len(s.Paths) {
		return fmt.Sprintf("%s only in first snapshot", s.Paths[i])
	}
	if j < len(o.Paths) {
		return fmt.Sprintf("%s only in second snapshot", o.Paths[j])
	}
	return ""
}

// Collector bundles the registry and the epoch time-series one observed
// run feeds. The engine samples Series at every epoch barrier; the
// registry is snapshotted once at end of run.
type Collector struct {
	Registry *Registry
	Series   *Series
}

// DefaultSeriesCap is the default ring capacity of the epoch
// time-series: enough for the scaled-down experiment runs to keep every
// epoch, while bounding memory on paper-scale runs (the ring keeps the
// newest samples and counts the dropped ones).
const DefaultSeriesCap = 1 << 14

// NewCollector creates a collector whose series ring holds up to
// seriesCap samples (<=0 selects DefaultSeriesCap).
func NewCollector(seriesCap int) *Collector {
	if seriesCap <= 0 {
		seriesCap = DefaultSeriesCap
	}
	return &Collector{Registry: NewRegistry(), Series: NewSeries(seriesCap)}
}
