// Package scene defines the triangle-soup scene model consumed by the
// BVH builder and renderer, plus procedural generators for the four
// benchmark scenes the paper evaluates (conference room, fairy forest,
// crytek sponza, plants).
//
// The original meshes are not redistributable, so each generator
// synthesizes geometry that preserves the property the paper's analysis
// attributes to that scene: the conference room is an indoor box with
// ceiling lights and uneven furniture clutter; the fairy forest is a
// "teapot in a stadium" (small dense model in a large open environment);
// the sponza is tall occluding architecture where rays are hard to
// terminate; the plants scene is a large count of densely distributed
// small triangles.
package scene

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/vec"
)

// MaterialKind selects the BSDF used at a surface.
type MaterialKind uint8

// Material kinds.
const (
	Diffuse MaterialKind = iota
	Mirror
	Glossy
	Emissive
)

func (k MaterialKind) String() string {
	switch k {
	case Diffuse:
		return "diffuse"
	case Mirror:
		return "mirror"
	case Glossy:
		return "glossy"
	case Emissive:
		return "emissive"
	default:
		return fmt.Sprintf("MaterialKind(%d)", uint8(k))
	}
}

// Material describes a surface's reflectance.
type Material struct {
	Kind      MaterialKind
	Albedo    vec.V3  // reflectance for diffuse/glossy, tint for mirror
	Emission  vec.V3  // radiance for emissive surfaces
	Roughness float32 // glossy exponent control in (0, 1]
}

// Scene is a triangle soup with materials and a list of emissive
// triangles that act as light sources.
type Scene struct {
	Name      string
	Tris      []geom.Triangle
	Materials []Material
	Lights    []int32 // indices into Tris of emissive triangles
	Bounds    geom.AABB
}

// Builder incrementally assembles a Scene.
type Builder struct {
	s Scene
}

// NewBuilder returns an empty scene builder with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{s: Scene{Name: name, Bounds: geom.EmptyAABB()}}
}

// AddMaterial registers a material and returns its id.
func (b *Builder) AddMaterial(m Material) int32 {
	b.s.Materials = append(b.s.Materials, m)
	return int32(len(b.s.Materials) - 1)
}

// AddTriangle appends one triangle with material id mat.
func (b *Builder) AddTriangle(a, bb, c vec.V3, mat int32) {
	t := geom.Triangle{A: a, B: bb, C: c, Material: mat}
	if int(mat) < len(b.s.Materials) && b.s.Materials[mat].Kind == Emissive {
		b.s.Lights = append(b.s.Lights, int32(len(b.s.Tris)))
	}
	b.s.Tris = append(b.s.Tris, t)
	b.s.Bounds = b.s.Bounds.Union(t.Bounds())
}

// AddQuad appends two triangles forming the quad (a, b, c, d) in order.
func (b *Builder) AddQuad(a, bb, c, d vec.V3, mat int32) {
	b.AddTriangle(a, bb, c, mat)
	b.AddTriangle(a, c, d, mat)
}

// AddBox appends the 12 triangles of an axis-aligned box.
func (b *Builder) AddBox(box geom.AABB, mat int32) {
	lo, hi := box.Min, box.Max
	v := [8]vec.V3{
		{X: lo.X, Y: lo.Y, Z: lo.Z}, {X: hi.X, Y: lo.Y, Z: lo.Z},
		{X: hi.X, Y: hi.Y, Z: lo.Z}, {X: lo.X, Y: hi.Y, Z: lo.Z},
		{X: lo.X, Y: lo.Y, Z: hi.Z}, {X: hi.X, Y: lo.Y, Z: hi.Z},
		{X: hi.X, Y: hi.Y, Z: hi.Z}, {X: lo.X, Y: hi.Y, Z: hi.Z},
	}
	quads := [6][4]int{
		{0, 1, 2, 3}, {5, 4, 7, 6}, // -z, +z
		{4, 0, 3, 7}, {1, 5, 6, 2}, // -x, +x
		{4, 5, 1, 0}, {3, 2, 6, 7}, // -y, +y
	}
	for _, q := range quads {
		b.AddQuad(v[q[0]], v[q[1]], v[q[2]], v[q[3]], mat)
	}
}

// AddSphere appends a UV-sphere approximation with the requested number
// of latitudinal and longitudinal segments.
func (b *Builder) AddSphere(center vec.V3, radius float32, latSeg, lonSeg int, mat int32) {
	if latSeg < 2 {
		latSeg = 2
	}
	if lonSeg < 3 {
		lonSeg = 3
	}
	pt := func(i, j int) vec.V3 {
		theta := float64(i) / float64(latSeg) * 3.14159265358979
		phi := float64(j) / float64(lonSeg) * 2 * 3.14159265358979
		st, ct := sincos(theta)
		sp, cp := sincos(phi)
		return center.Add(vec.New(
			radius*float32(st*cp),
			radius*float32(ct),
			radius*float32(st*sp)))
	}
	for i := 0; i < latSeg; i++ {
		for j := 0; j < lonSeg; j++ {
			p00 := pt(i, j)
			p01 := pt(i, j+1)
			p10 := pt(i+1, j)
			p11 := pt(i+1, j+1)
			if i != 0 {
				b.AddTriangle(p00, p10, p01, mat)
			}
			if i != latSeg-1 {
				b.AddTriangle(p01, p10, p11, mat)
			}
		}
	}
}

// AddCylinder appends an open cylinder along +Y.
func (b *Builder) AddCylinder(base vec.V3, radius, height float32, seg int, mat int32) {
	if seg < 3 {
		seg = 3
	}
	for j := 0; j < seg; j++ {
		a0 := float64(j) / float64(seg) * 2 * 3.14159265358979
		a1 := float64(j+1) / float64(seg) * 2 * 3.14159265358979
		s0, c0 := sincos(a0)
		s1, c1 := sincos(a1)
		p0 := base.Add(vec.New(radius*float32(c0), 0, radius*float32(s0)))
		p1 := base.Add(vec.New(radius*float32(c1), 0, radius*float32(s1)))
		q0 := p0.Add(vec.New(0, height, 0))
		q1 := p1.Add(vec.New(0, height, 0))
		b.AddQuad(p0, p1, q1, q0, mat)
	}
}

// Scene finalizes and returns the assembled scene.
func (b *Builder) Scene() *Scene {
	s := b.s
	return &s
}

// TriCount returns the number of triangles added so far.
func (b *Builder) TriCount() int { return len(b.s.Tris) }

func sincos(x float64) (s, c float64) {
	return math.Sin(x), math.Cos(x)
}

// Validate checks the structural invariants of a scene: every triangle
// references a valid material, every light index references an emissive
// triangle, and bounds contain all triangles. It returns the first
// violation found.
func (s *Scene) Validate() error {
	for i, t := range s.Tris {
		if t.Material < 0 || int(t.Material) >= len(s.Materials) {
			return fmt.Errorf("scene %q: tri %d has invalid material %d", s.Name, i, t.Material)
		}
		if !s.Bounds.ContainsBox(t.Bounds()) {
			return fmt.Errorf("scene %q: tri %d escapes scene bounds", s.Name, i)
		}
	}
	for _, li := range s.Lights {
		if li < 0 || int(li) >= len(s.Tris) {
			return fmt.Errorf("scene %q: light index %d out of range", s.Name, li)
		}
		if s.Materials[s.Tris[li].Material].Kind != Emissive {
			return fmt.Errorf("scene %q: light %d is not emissive", s.Name, li)
		}
	}
	return nil
}
