package scene

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/vec"
)

func TestBuilderQuadBoxCounts(t *testing.T) {
	bd := NewBuilder("t")
	m := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.Splat(0.5)})
	bd.AddQuad(vec.New(0, 0, 0), vec.New(1, 0, 0), vec.New(1, 1, 0), vec.New(0, 1, 0), m)
	if bd.TriCount() != 2 {
		t.Errorf("quad tri count = %d", bd.TriCount())
	}
	bd.AddBox(geom.AABB{Min: vec.New(0, 0, 0), Max: vec.New(1, 1, 1)}, m)
	if bd.TriCount() != 14 {
		t.Errorf("box tri count = %d", bd.TriCount())
	}
}

func TestBuilderLightsTracked(t *testing.T) {
	bd := NewBuilder("t")
	d := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.Splat(0.5)})
	e := bd.AddMaterial(Material{Kind: Emissive, Emission: vec.Splat(5)})
	bd.AddTriangle(vec.New(0, 0, 0), vec.New(1, 0, 0), vec.New(0, 1, 0), d)
	bd.AddTriangle(vec.New(0, 0, 1), vec.New(1, 0, 1), vec.New(0, 1, 1), e)
	s := bd.Scene()
	if len(s.Lights) != 1 || s.Lights[0] != 1 {
		t.Errorf("lights = %v", s.Lights)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSphereClosedAndCounted(t *testing.T) {
	bd := NewBuilder("t")
	m := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.Splat(0.5)})
	bd.AddSphere(vec.New(0, 0, 0), 1, 8, 16, m)
	// 8 lat x 16 lon: poles have 16 tris each, middle rows have 2 each.
	want := 16 + 16 + (8-2)*16*2
	if bd.TriCount() != want {
		t.Errorf("sphere tri count = %d, want %d", bd.TriCount(), want)
	}
	// All vertices on the unit sphere.
	for _, tri := range bd.Scene().Tris {
		for _, v := range []vec.V3{tri.A, tri.B, tri.C} {
			if l := v.Len(); l < 0.99 || l > 1.01 {
				t.Fatalf("vertex off sphere: %v (len %v)", v, l)
			}
		}
	}
}

func TestCylinderCount(t *testing.T) {
	bd := NewBuilder("t")
	m := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.Splat(0.5)})
	bd.AddCylinder(vec.New(0, 0, 0), 1, 2, 12, m)
	if bd.TriCount() != 24 {
		t.Errorf("cylinder tri count = %d, want 24", bd.TriCount())
	}
}

func TestBenchmarkNamesAndPaperCounts(t *testing.T) {
	if len(Benchmarks) != 4 {
		t.Fatalf("expected 4 benchmarks")
	}
	names := map[Benchmark]string{
		ConferenceRoom: "conference", FairyForest: "fairy",
		CrytekSponza: "sponza", Plants: "plants",
	}
	for b, n := range names {
		if b.String() != n {
			t.Errorf("%v name = %q", b, b.String())
		}
		if b.PaperTriCount() <= 0 {
			t.Errorf("%v has no paper tri count", b)
		}
	}
	if Plants.PaperTriCount() != 1_100_000 {
		t.Errorf("plants paper count = %d", Plants.PaperTriCount())
	}
}

func TestGenerateAllScenes(t *testing.T) {
	const budget = 3000
	for _, b := range Benchmarks {
		s := Generate(b, budget)
		if s.Name != b.String() {
			t.Errorf("%v scene name = %q", b, s.Name)
		}
		if len(s.Tris) < budget {
			t.Errorf("%v generated %d tris, want >= %d", b, len(s.Tris), budget)
		}
		if len(s.Tris) > budget*2 {
			t.Errorf("%v overshot budget badly: %d tris", b, len(s.Tris))
		}
		if len(s.Lights) == 0 {
			t.Errorf("%v has no lights", b)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%v invalid: %v", b, err)
		}
		if s.Bounds.IsEmpty() {
			t.Errorf("%v empty bounds", b)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(ConferenceRoom, 2000)
	b := Generate(ConferenceRoom, 2000)
	if len(a.Tris) != len(b.Tris) {
		t.Fatalf("non-deterministic tri count: %d vs %d", len(a.Tris), len(b.Tris))
	}
	for i := range a.Tris {
		if a.Tris[i] != b.Tris[i] {
			t.Fatalf("tri %d differs between runs", i)
		}
	}
}

func TestFairyIsTeapotInStadium(t *testing.T) {
	s := Generate(FairyForest, 6000)
	// Most triangles must be concentrated in a small central region
	// relative to the whole scene extent.
	center := geom.AABB{Min: vec.New(-3, -1, -3), Max: vec.New(3, 4, 3)}
	inCenter := 0
	for _, tri := range s.Tris {
		if center.ContainsBox(tri.Bounds()) {
			inCenter++
		}
	}
	frac := float64(inCenter) / float64(len(s.Tris))
	if frac < 0.5 {
		t.Errorf("only %.0f%% of fairy tris in the central model; want teapot-in-stadium", frac*100)
	}
	d := s.Bounds.Diagonal()
	if d.X < 100 || d.Z < 100 {
		t.Errorf("fairy environment not large: %v", d)
	}
}

func TestPlantsIsDense(t *testing.T) {
	s := Generate(Plants, 8000)
	var areaSum float32
	for _, tri := range s.Tris {
		areaSum += tri.Area()
	}
	avg := areaSum / float32(len(s.Tris))
	// Excluding the two huge quads, leaves are tiny; average area must
	// be dominated by them only slightly — check median-ish via count of
	// small triangles instead.
	small := 0
	for _, tri := range s.Tris {
		if tri.Area() < 0.1 {
			small++
		}
	}
	if float64(small)/float64(len(s.Tris)) < 0.8 {
		t.Errorf("plants not dominated by small triangles (%d/%d), avg area %v", small, len(s.Tris), avg)
	}
}

func TestValidateCatchesBadMaterial(t *testing.T) {
	s := &Scene{
		Name:   "bad",
		Tris:   []geom.Triangle{{A: vec.New(0, 0, 0), B: vec.New(1, 0, 0), C: vec.New(0, 1, 0), Material: 5}},
		Bounds: geom.AABB{Min: vec.Splat(-1), Max: vec.Splat(2)},
	}
	if err := s.Validate(); err == nil {
		t.Errorf("expected invalid material error")
	}
}

func TestMaterialKindString(t *testing.T) {
	for k, want := range map[MaterialKind]string{
		Diffuse: "diffuse", Mirror: "mirror", Glossy: "glossy", Emissive: "emissive",
	} {
		if k.String() != want {
			t.Errorf("%d String = %q", k, k.String())
		}
	}
}
