package scene

import (
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/vec"
)

// ProbeRays generates a deterministic ray set spanning the scene
// bounds: origins jittered across the box, directions on the unit
// sphere. Seeded PCG — identical on every run and platform. This is
// the shared probe workload used wherever a tool needs "representative
// rays for this scene" without a full camera/path-trace setup (the
// drslint kernel explorations drive every variant with it).
func ProbeRays(s *Scene, n int) []geom.Ray {
	r := rng.NewPCG32(0x5EED, 0xCAFE)
	span := s.Bounds.Max.Sub(s.Bounds.Min)
	ones := vec.New(1, 1, 1)
	rays := make([]geom.Ray, n)
	for i := range rays {
		o := s.Bounds.Min.Add(span.Mul(randV3(r)))
		d := randV3(r).Scale(2).Sub(ones)
		for d.Len2() < 1e-4 {
			d = randV3(r).Scale(2).Sub(ones)
		}
		rays[i] = geom.NewRay(o, d.Norm())
	}
	return rays
}

// randV3 draws a vector with each component uniform in [0, 1).
func randV3(r *rng.PCG32) vec.V3 {
	return vec.New(r.Float32(), r.Float32(), r.Float32())
}
