package scene_test

import (
	"fmt"

	"repro/internal/scene"
)

// Generate builds a deterministic procedural stand-in for one of the
// paper's benchmark scenes at any triangle budget.
func ExampleGenerate() {
	s := scene.Generate(scene.ConferenceRoom, 5000)
	fmt.Println(s.Name, len(s.Tris) >= 5000, len(s.Lights) > 0)
	// Output: conference true true
}

func ExampleBenchmark_PaperTriCount() {
	for _, b := range scene.Benchmarks {
		fmt.Println(b, b.PaperTriCount())
	}
	// Output:
	// conference 283000
	// fairy 174000
	// sponza 262000
	// plants 1100000
}
