package scene

import (
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/vec"
)

// Benchmark identifies one of the paper's four evaluation scenes.
type Benchmark int

// The four benchmark scenes of the paper (Figure 7).
const (
	ConferenceRoom Benchmark = iota
	FairyForest
	CrytekSponza
	Plants
)

// Benchmarks lists all four scenes in the paper's order.
var Benchmarks = []Benchmark{ConferenceRoom, FairyForest, CrytekSponza, Plants}

func (b Benchmark) String() string {
	switch b {
	case ConferenceRoom:
		return "conference"
	case FairyForest:
		return "fairy"
	case CrytekSponza:
		return "sponza"
	case Plants:
		return "plants"
	default:
		return "unknown"
	}
}

// PaperTriCount returns the triangle count the paper reports for the
// original mesh (Figure 7). Our generators scale to any budget; the
// paper counts are the default full-scale targets.
func (b Benchmark) PaperTriCount() int {
	switch b {
	case ConferenceRoom:
		return 283_000
	case FairyForest:
		return 174_000
	case CrytekSponza:
		return 262_000
	case Plants:
		return 1_100_000
	default:
		return 0
	}
}

// Generate builds the procedural stand-in for benchmark b with
// approximately triBudget triangles (a budget <= 0 selects the paper's
// full-scale count). Generation is deterministic for a given budget.
func Generate(b Benchmark, triBudget int) *Scene {
	if triBudget <= 0 {
		triBudget = b.PaperTriCount()
	}
	switch b {
	case ConferenceRoom:
		return generateConference(triBudget)
	case FairyForest:
		return generateFairy(triBudget)
	case CrytekSponza:
		return generateSponza(triBudget)
	case Plants:
		return generatePlants(triBudget)
	default:
		panic("scene: unknown benchmark")
	}
}

// generateConference builds an indoor room: closed box, ceiling area
// lights, a large table and uneven clusters of chair-like furniture.
// Objects are unevenly distributed, matching the paper's description.
func generateConference(budget int) *Scene {
	bd := NewBuilder("conference")
	white := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.New(0.75, 0.73, 0.70)})
	wood := bd.AddMaterial(Material{Kind: Glossy, Albedo: vec.New(0.48, 0.33, 0.18), Roughness: 0.3})
	metal := bd.AddMaterial(Material{Kind: Mirror, Albedo: vec.New(0.85, 0.85, 0.88)})
	cloth := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.New(0.25, 0.30, 0.45)})
	light := bd.AddMaterial(Material{Kind: Emissive, Albedo: vec.Splat(0.8), Emission: vec.New(18, 17, 15)})

	// Room shell: 20 x 6 x 12 meters, interior faces.
	room := geom.AABB{Min: vec.New(0, 0, 0), Max: vec.New(20, 6, 12)}
	addRoomShell(bd, room, white)

	// Ceiling light panels (the paper notes these make rays easy to
	// terminate compared to sponza).
	for i := 0; i < 4; i++ {
		for j := 0; j < 2; j++ {
			x := 3 + float32(i)*4.2
			z := 3 + float32(j)*5
			bd.AddQuad(
				vec.New(x, 5.95, z), vec.New(x+2, 5.95, z),
				vec.New(x+2, 5.95, z+1.2), vec.New(x, 5.95, z+1.2), light)
		}
	}

	// Conference table.
	bd.AddBox(geom.AABB{Min: vec.New(5, 1.0, 4), Max: vec.New(15, 1.15, 8)}, wood)
	for _, p := range [][2]float32{{5.5, 4.5}, {14.5, 4.5}, {5.5, 7.5}, {14.5, 7.5}} {
		bd.AddCylinder(vec.New(p[0], 0, p[1]), 0.12, 1.0, 10, metal)
	}

	// Spend the remaining budget on unevenly clustered furniture: chair
	// clusters around the table plus sparse clutter near the walls.
	r := rng.NewPCG32(101, 7)
	for bd.TriCount() < budget-700 {
		var cx, cz float32
		if r.Float32() < 0.75 {
			// Dense ring around the table.
			cx = 4 + r.Float32()*12
			cz = 2.5 + r.Float32()*7
		} else {
			// Sparse wall clutter.
			cx = 0.5 + r.Float32()*19
			cz = 0.5 + r.Float32()*11
		}
		addChair(bd, vec.New(cx, 0, cz), 0.4+r.Float32()*0.2, cloth, metal, r)
	}

	// Fine detail: a faceted sphere sculpture to absorb leftover budget.
	for bd.TriCount() < budget {
		rem := budget - bd.TriCount()
		seg := sphereSegForBudget(rem)
		bd.AddSphere(vec.New(10, 1.6, 6), 0.45, seg, seg*2, metal)
	}
	return bd.Scene()
}

// generateFairy builds the "teapot in a stadium": a huge sparse outdoor
// environment (ground + a few big shapes) with ~80% of the triangle
// budget packed into one small, highly detailed model in the middle.
func generateFairy(budget int) *Scene {
	bd := NewBuilder("fairy")
	grass := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.New(0.25, 0.45, 0.18)})
	bark := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.New(0.35, 0.25, 0.15)})
	skin := bd.AddMaterial(Material{Kind: Glossy, Albedo: vec.New(0.8, 0.65, 0.55), Roughness: 0.4})
	moon := bd.AddMaterial(Material{Kind: Emissive, Albedo: vec.Splat(0.9), Emission: vec.New(8, 8, 10)})

	// Vast ground plane, 400 x 400.
	bd.AddQuad(
		vec.New(-200, 0, -200), vec.New(200, 0, -200),
		vec.New(200, 0, 200), vec.New(-200, 0, 200), grass)

	// Sky light: a large emissive quad high above (outdoor scene).
	bd.AddQuad(
		vec.New(-150, 120, -150), vec.New(150, 120, -150),
		vec.New(150, 120, 150), vec.New(-150, 120, 150), moon)

	// A handful of big coarse "trees" scattered widely.
	r := rng.NewPCG32(202, 11)
	coarse := budget / 5
	for bd.TriCount() < coarse {
		x := (r.Float32()*2 - 1) * 150
		z := (r.Float32()*2 - 1) * 150
		if x*x+z*z < 400 { // keep the center clear for the model
			continue
		}
		h := 6 + r.Float32()*10
		bd.AddCylinder(vec.New(x, 0, z), 0.5+r.Float32(), h, 8, bark)
		bd.AddSphere(vec.New(x, h+2, z), 2.5+r.Float32()*2, 6, 10, grass)
	}

	// The small detailed model: a dense cluster of spheres ~2 units
	// across at the origin, absorbing the rest of the budget.
	for bd.TriCount() < budget {
		rem := budget - bd.TriCount()
		seg := sphereSegForBudget(rem)
		cx := (r.Float32()*2 - 1) * 0.8
		cy := 0.3 + r.Float32()*1.4
		cz := (r.Float32()*2 - 1) * 0.8
		bd.AddSphere(vec.New(cx, cy, cz), 0.1+r.Float32()*0.25, seg, seg*2, skin)
	}
	return bd.Scene()
}

// generateSponza builds tall occluding architecture: a two-story
// colonnaded atrium with a narrow sky opening. Lights are hard to reach
// so rays need many bounces to terminate, matching the paper's analysis
// of why sponza is the slowest scene.
func generateSponza(budget int) *Scene {
	bd := NewBuilder("sponza")
	stone := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.New(0.55, 0.50, 0.42)})
	brick := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.New(0.45, 0.30, 0.22)})
	fabric := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.New(0.55, 0.12, 0.10)})
	sky := bd.AddMaterial(Material{Kind: Emissive, Albedo: vec.Splat(0.9), Emission: vec.New(6, 7, 9)})

	// Atrium shell: 30 x 14 x 14, open only through a narrow roof slot.
	shell := geom.AABB{Min: vec.New(0, 0, 0), Max: vec.New(30, 14, 14)}
	addRoomShell(bd, shell, brick)
	// Narrow sky slot along the middle of the ceiling.
	bd.AddQuad(
		vec.New(6, 13.9, 5.5), vec.New(24, 13.9, 5.5),
		vec.New(24, 13.9, 8.5), vec.New(6, 13.9, 8.5), sky)

	// Two stories of colonnades along both long walls.
	r := rng.NewPCG32(303, 13)
	for story := 0; story < 2; story++ {
		y := float32(story) * 6
		for i := 0; i < 12; i++ {
			x := 2 + float32(i)*2.4
			for _, z := range []float32{3, 11} {
				bd.AddCylinder(vec.New(x, y, z), 0.35, 5.0, 14, stone)
				// Capital and base blocks.
				bd.AddBox(geom.AABB{
					Min: vec.New(x-0.5, y+5.0, z-0.5),
					Max: vec.New(x+0.5, y+5.6, z+0.5)}, stone)
				bd.AddBox(geom.AABB{
					Min: vec.New(x-0.5, y, z-0.5),
					Max: vec.New(x+0.5, y+0.3, z+0.5)}, stone)
			}
		}
		// Walkway floors behind the colonnades.
		bd.AddBox(geom.AABB{Min: vec.New(0, y+5.6, 0), Max: vec.New(30, y+6, 3.5)}, stone)
		bd.AddBox(geom.AABB{Min: vec.New(0, y+5.6, 10.5), Max: vec.New(30, y+6, 14)}, stone)
	}

	// Hanging fabric banners (the sponza's drapes) — thin boxes at
	// random positions that add occlusion complexity.
	for bd.TriCount() < budget*3/5 {
		x := 3 + r.Float32()*24
		z := 4.5 + r.Float32()*5
		y := 7 + r.Float32()*4
		w := 0.8 + r.Float32()*1.4
		bd.AddBox(geom.AABB{
			Min: vec.New(x, y-2.5, z),
			Max: vec.New(x+w, y, z+0.05)}, fabric)
	}

	// Architectural relief detail: many small stone blocks on walls,
	// absorbing the rest of the budget.
	for bd.TriCount() < budget {
		x := r.Float32() * 30
		y := r.Float32() * 13
		z := float32(0.1)
		if r.Float32() < 0.5 {
			z = 13.6
		}
		s := 0.1 + r.Float32()*0.3
		bd.AddBox(geom.AABB{
			Min: vec.New(x, y, z),
			Max: vec.New(x+s, y+s, z+0.3)}, stone)
	}
	return bd.Scene()
}

// generatePlants builds the dense outdoor scene: a large count of small
// leaf triangles densely and uniformly distributed above a ground
// plane, with stems connecting to the ground.
func generatePlants(budget int) *Scene {
	bd := NewBuilder("plants")
	leaf := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.New(0.20, 0.42, 0.12)})
	leaf2 := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.New(0.32, 0.50, 0.15)})
	soil := bd.AddMaterial(Material{Kind: Diffuse, Albedo: vec.New(0.30, 0.22, 0.12)})
	sun := bd.AddMaterial(Material{Kind: Emissive, Albedo: vec.Splat(0.9), Emission: vec.New(10, 9, 7)})

	// Ground.
	bd.AddQuad(
		vec.New(-60, 0, -60), vec.New(60, 0, -60),
		vec.New(60, 0, 60), vec.New(-60, 0, 60), soil)
	// Sky light.
	bd.AddQuad(
		vec.New(-50, 40, -50), vec.New(50, 40, -50),
		vec.New(50, 40, 50), vec.New(-50, 40, 50), sun)

	// Dense foliage: clusters of leaves. Each leaf is a single small
	// triangle; clusters sit on short stems. The paper stresses that the
	// plants scene's reflected rays are mostly occluded by the dense
	// triangles, so density is the key property here.
	r := rng.NewPCG32(404, 17)
	for bd.TriCount() < budget {
		// Cluster center.
		cx := (r.Float32()*2 - 1) * 55
		cz := (r.Float32()*2 - 1) * 55
		h := 0.3 + r.Float32()*2.2
		bd.AddCylinder(vec.New(cx, 0, cz), 0.03, h, 4, soil)
		mat := leaf
		if r.Float32() < 0.5 {
			mat = leaf2
		}
		leaves := 20 + r.IntN(40)
		for k := 0; k < leaves && bd.TriCount() < budget; k++ {
			px := cx + (r.Float32()*2-1)*0.8
			py := h + (r.Float32()*2-1)*0.6
			if py < 0.05 {
				py = 0.05
			}
			pz := cz + (r.Float32()*2-1)*0.8
			size := 0.05 + r.Float32()*0.12
			a := vec.New(px, py, pz)
			b := a.Add(vec.New((r.Float32()*2-1)*size, r.Float32()*size, (r.Float32()*2-1)*size))
			c := a.Add(vec.New((r.Float32()*2-1)*size, r.Float32()*size, (r.Float32()*2-1)*size))
			bd.AddTriangle(a, b, c, mat)
		}
	}
	return bd.Scene()
}

// addRoomShell adds the six interior faces of box so normals face
// inward (winding chosen per face).
func addRoomShell(bd *Builder, box geom.AABB, mat int32) {
	lo, hi := box.Min, box.Max
	// Floor (+y up).
	bd.AddQuad(vec.New(lo.X, lo.Y, lo.Z), vec.New(hi.X, lo.Y, lo.Z),
		vec.New(hi.X, lo.Y, hi.Z), vec.New(lo.X, lo.Y, hi.Z), mat)
	// Ceiling.
	bd.AddQuad(vec.New(lo.X, hi.Y, lo.Z), vec.New(lo.X, hi.Y, hi.Z),
		vec.New(hi.X, hi.Y, hi.Z), vec.New(hi.X, hi.Y, lo.Z), mat)
	// Walls.
	bd.AddQuad(vec.New(lo.X, lo.Y, lo.Z), vec.New(lo.X, hi.Y, lo.Z),
		vec.New(hi.X, hi.Y, lo.Z), vec.New(hi.X, lo.Y, lo.Z), mat)
	bd.AddQuad(vec.New(lo.X, lo.Y, hi.Z), vec.New(hi.X, lo.Y, hi.Z),
		vec.New(hi.X, hi.Y, hi.Z), vec.New(lo.X, hi.Y, hi.Z), mat)
	bd.AddQuad(vec.New(lo.X, lo.Y, lo.Z), vec.New(lo.X, lo.Y, hi.Z),
		vec.New(lo.X, hi.Y, hi.Z), vec.New(lo.X, hi.Y, lo.Z), mat)
	bd.AddQuad(vec.New(hi.X, lo.Y, lo.Z), vec.New(hi.X, hi.Y, lo.Z),
		vec.New(hi.X, hi.Y, hi.Z), vec.New(hi.X, lo.Y, hi.Z), mat)
}

// addChair adds a simple chair: seat, back and four legs.
func addChair(bd *Builder, at vec.V3, scale float32, seatMat, legMat int32, r *rng.PCG32) {
	s := scale
	seatH := 0.45 * s * 2
	// Legs.
	for _, d := range [][2]float32{{-1, -1}, {1, -1}, {-1, 1}, {1, 1}} {
		bd.AddCylinder(at.Add(vec.New(d[0]*0.2*s*2, 0, d[1]*0.2*s*2)), 0.02*s*2, seatH, 6, legMat)
	}
	// Seat.
	bd.AddBox(geom.AABB{
		Min: at.Add(vec.New(-0.25*s*2, seatH, -0.25*s*2)),
		Max: at.Add(vec.New(0.25*s*2, seatH+0.05*s*2, 0.25*s*2))}, seatMat)
	// Back.
	bd.AddBox(geom.AABB{
		Min: at.Add(vec.New(-0.25*s*2, seatH, 0.2*s*2)),
		Max: at.Add(vec.New(0.25*s*2, seatH+0.5*s*2, 0.25*s*2))}, seatMat)
}

// sphereSegForBudget picks a sphere tessellation whose triangle count
// (~2*seg*seg) does not exceed the remaining budget, clamped to a
// sensible range.
func sphereSegForBudget(remaining int) int {
	seg := 3
	for seg < 24 && 2*(seg+1)*(seg+1)*2 < remaining {
		seg++
	}
	return seg
}
