package simt

// Pluggable warp scheduling. The per-cycle pick was historically a
// two-way enum switch (SchedGTO/SchedRR); Config.SchedFactory opens it
// to external policies (internal/warpsched) without reintroducing
// interface dispatch on the issue path: NewSMX calls the factory once
// and stores the returned func values directly in the SMX's pickFn and
// onIssueFn fields, exactly like the kernel Step method and the
// architecture hooks. The steady-state cycle loop therefore makes one
// indirect call per pick — the same shape as the builtin policies —
// and allocates nothing as long as the policy's own funcs do not.

// SchedView is the window a warp-scheduler policy gets onto one SMX's
// scheduling state. It is handed to a SchedFactory at NewSMX, after
// the warp store is built and sized; all methods read the live store,
// and none of them allocates. The view stays valid for the SMX's
// lifetime.
type SchedView struct {
	s *SMX
}

// SMXID returns the SMX's index within the device.
func (v SchedView) SMXID() int { return v.s.ID }

// NumWarps returns the number of resident warps. Warp w belongs to
// scheduler w % NumSchedulers; its rank within that scheduler's stride
// is w / NumSchedulers.
func (v SchedView) NumWarps() int { return v.s.st.n }

// NumSchedulers returns the number of warp schedulers per SMX.
func (v SchedView) NumSchedulers() int { return v.s.nsched }

// Cycle returns the current device cycle.
func (v SchedView) Cycle() int64 { return v.s.cycle }

// Issuable reports whether warp w could issue this cycle (live, not
// parked, not stalled on memory or a gate push-back). A policy's Pick
// must only return issuable warps.
func (v SchedView) Issuable(w int) bool { return v.s.issuable(w) }

// LastIssued returns the cycle warp w last issued an instruction
// (0 before its first issue) — the age key of the builtin
// oldest-first orders.
func (v SchedView) LastIssued(w int) int64 { return v.s.st.lastIssued[w] }

// LastPicked returns the warp the scheduler issued from last, or -1.
func (v SchedView) LastPicked(sched int) int { return v.s.lastWarp[sched] }

// PickGTO runs the canonical greedy-then-oldest scan for the
// scheduler: prefer the warp it issued from last, else the issuable
// warp with the oldest LastIssued, lowest id on ties. Registry
// policies that want the builtin behavior (or a fallback tier of it)
// call this instead of reimplementing the scan.
func (v SchedView) PickGTO(sched int) int { return v.s.pickGTO(sched) }

// PickLRR runs the canonical loose round-robin scan: rotate through
// the scheduler's warps starting after the one it issued from last.
func (v SchedView) PickLRR(sched int) int { return v.s.pickRR(sched) }

// SchedProgram is one SMX's bound warp-scheduler instance: the func
// values NewSMX devirtualizes into the issue path.
type SchedProgram struct {
	// Pick selects the next warp for scheduler `sched`
	// (0 ≤ sched < NumSchedulers), returning its id or -1 when none of
	// the scheduler's warps is issuable. Determinism contract: the
	// choice must be a pure function of SchedView state (no wall
	// clock, no RNG, no map iteration), with ties broken lowest-id
	// first. Pick should be total — returning -1 while an issuable
	// warp exists is safe (the idle cache only short-circuits cycles
	// where the scan would genuinely find nothing, so the machine
	// re-asks every cycle) but wastes issue slots.
	Pick func(sched int) int
	// OnIssue, when non-nil, is called once per instruction issued
	// from warp w, after the issue is charged. Policies that need
	// progress counters (WaSP's runner/follower distance) maintain
	// them here; it must not allocate in steady state.
	OnIssue func(w int)
}

// SchedFactory builds a policy's per-SMX scheduler instance. NewSMX
// calls it once per SMX, after the warp store is sized, so the factory
// may allocate per-warp state; the returned funcs run on the SMX's
// cycle loop and must not.
type SchedFactory func(v SchedView) SchedProgram
