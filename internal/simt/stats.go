package simt

// Stats accumulates the counters the experiments report. All counts are
// per-SMX; GPU-level results merge the per-SMX stats.
type Stats struct {
	// Cycles is excluded from struct registration in the metrics
	// registry: the live SMX keeps its cycle in SMX.cycle and only
	// copies it here in snapshots, so the registry reads it through a
	// dedicated gauge instead (see SMX.RegisterMetrics).
	Cycles int64 `metrics:"-"`

	// WarpInstrs is the total number of warp instructions issued
	// (all tags).
	WarpInstrs int64
	// ActiveThreadSum is the sum over issued instructions of the number
	// of active threads, so SIMD efficiency = ActiveThreadSum /
	// (WarpInstrs * WarpSize).
	ActiveThreadSum int64
	// ActiveHist[k] counts instructions issued with exactly k active
	// threads (k in 1..32).
	ActiveHist [33]int64

	// SIInstrs / SIActiveSum cover TagSI instructions only (micro-
	// kernel spawn overhead, separated in Figure 10).
	SIInstrs    int64
	SIActiveSum int64

	// CtrlInstrs counts TagCtrl (rdctrl) instructions issued.
	CtrlInstrs int64
	// CtrlStalls counts scheduler slots where a warp's rdctrl issue was
	// suspended by the gate (Figure 9's warp issue stall rate is
	// CtrlStalls / (CtrlStalls + CtrlInstrs)).
	CtrlStalls int64

	// MemInstrs counts memory instructions issued; MemTransactions the
	// coalesced line transactions they produced.
	MemInstrs       int64
	MemTransactions int64

	// IssueSlotsTotal counts scheduler dispatch opportunities;
	// IssueSlotsUsed those that issued an instruction.
	IssueSlotsTotal int64
	IssueSlotsUsed  int64

	// BarrierStallCycles counts warp-cycles spent parked at
	// compaction barriers (TBC).
	BarrierStallCycles int64
	// SpawnConflictCycles counts extra cycles from spawn-memory bank
	// conflicts (DMK).
	SpawnConflictCycles int64

	// Retired counts thread contexts that ran to completion.
	Retired int64

	// Sampled warp-state census (taken every sampleInterval cycles):
	// how many warp-samples were executing, stalled short (gate retry),
	// stalled long (memory), parked, or done. Diagnostic only.
	SampledExec, SampledGate, SampledMem, SampledParked, SampledDone int64
}

// Add merges o into s, keeping Cycles as the max (SMXs run in
// parallel; the device finishes when the slowest SMX finishes).
func (s *Stats) Add(o Stats) {
	if o.Cycles > s.Cycles {
		s.Cycles = o.Cycles
	}
	s.WarpInstrs += o.WarpInstrs
	s.ActiveThreadSum += o.ActiveThreadSum
	for i := range s.ActiveHist {
		s.ActiveHist[i] += o.ActiveHist[i]
	}
	s.SIInstrs += o.SIInstrs
	s.SIActiveSum += o.SIActiveSum
	s.CtrlInstrs += o.CtrlInstrs
	s.CtrlStalls += o.CtrlStalls
	s.MemInstrs += o.MemInstrs
	s.MemTransactions += o.MemTransactions
	s.IssueSlotsTotal += o.IssueSlotsTotal
	s.IssueSlotsUsed += o.IssueSlotsUsed
	s.BarrierStallCycles += o.BarrierStallCycles
	s.SpawnConflictCycles += o.SpawnConflictCycles
	s.Retired += o.Retired
	s.SampledExec += o.SampledExec
	s.SampledGate += o.SampledGate
	s.SampledMem += o.SampledMem
	s.SampledParked += o.SampledParked
	s.SampledDone += o.SampledDone
}

// SIMDEfficiency returns ActiveThreadSum / (WarpInstrs * warpSize), the
// quantity Figures 2 and 10 report.
func (s Stats) SIMDEfficiency(warpSize int) float64 {
	if s.WarpInstrs == 0 {
		return 0
	}
	return float64(s.ActiveThreadSum) / float64(s.WarpInstrs*int64(warpSize))
}

// Breakdown returns the fraction of issued instructions in each
// quarter-warp activity band (W1:8, W9:16, W17:24, W25:32 for a 32-wide
// warp), plus the fraction that were spawn-related (SI). This matches
// the paper's Wm:n utilization breakdown.
type Breakdown struct {
	W1to8, W9to16, W17to24, W25to32 float64
	SI                              float64
}

// UtilizationBreakdown computes the Wm:n histogram bands.
func (s Stats) UtilizationBreakdown(warpSize int) Breakdown {
	if s.WarpInstrs == 0 {
		return Breakdown{}
	}
	q := warpSize / 4
	var b Breakdown
	total := float64(s.WarpInstrs)
	for k := 1; k <= warpSize; k++ {
		frac := float64(s.ActiveHist[k]) / total
		switch {
		case k <= q:
			b.W1to8 += frac
		case k <= 2*q:
			b.W9to16 += frac
		case k <= 3*q:
			b.W17to24 += frac
		default:
			b.W25to32 += frac
		}
	}
	b.SI = float64(s.SIInstrs) / total
	return b
}

// CtrlStallRate returns the fraction of rdctrl issue attempts that were
// suspended (Figure 9).
func (s Stats) CtrlStallRate() float64 {
	attempts := s.CtrlStalls + s.CtrlInstrs
	if attempts == 0 {
		return 0
	}
	return float64(s.CtrlStalls) / float64(attempts)
}

// MraysPerSec converts a retired-ray count and the recorded cycles to
// the paper's Mrays/s metric at the given clock.
func (s Stats) MraysPerSec(rays int64, clockMHz int) float64 {
	if s.Cycles == 0 {
		return 0
	}
	seconds := float64(s.Cycles) / (float64(clockMHz) * 1e6)
	return float64(rays) / 1e6 / seconds
}
