//drslint:hotpath
// warpstate.go holds the struct-of-arrays warp store: every per-warp
// and per-lane field of the engine lives in one flat array owned by the
// SMX, indexed by warp id (per-warp fields) or w*warpSize+l (per-lane
// fields). The issue loop, the divergence resolver and the scheduler
// scan these arrays linearly instead of chasing per-warp heap objects;
// vote/ballot/divergence-split and lane retirement are uint32 bitmask
// operations over the packed masks. The public *Warp type (warp.go) is
// a thin view over this store, which keeps the architecture hooks
// (core/dmk/tbc/ser/gshuffle) source-compatible.

package simt

import (
	"math/bits"

	"repro/internal/memsys"
)

// memPending is one warp memory access awaiting the epoch drain's L2
// hit/miss outcome: requests [first, first+count) on the SMX's L2
// port, and the ready cycle to impose if any of them missed. Pending
// records live at most one epoch — the barrier that follows their issue
// resolves and clears them.
type memPending struct {
	first     memsys.ReqID
	count     int
	missReady int64
}

// warpPhase tracks where a warp is in its block execution cycle.
type warpPhase uint8

const (
	phaseEnter   warpPhase = iota // needs gate check + Step for its block
	phaseExec                     // issuing the block's instructions
	phaseResolve                  // block finished, divergence pending
	phaseParked                   // suspended by an architecture hook (TBC barrier)
	phaseDone                     // all lanes retired
)

// stackEntry is one level of the IPDOM reconvergence stack. Fields are
// int32 so a warp's whole stack window stays within a few cache lines
// (block ids are small; noReconv fits).
type stackEntry struct {
	reconv int32  // block where this entry's threads reconverge
	pc     int32  // next block for this entry's threads
	mask   uint32 // active lanes
}

// noReconv marks the bottom stack entry, which never pops.
const noReconv = -2

// stackSlack bounds the per-warp reconvergence stack window: the engine
// panics when a stack exceeds 4*warpSize entries, and one resolve can
// push at most warpSize-1 entries before that check runs, so 5*warpSize
// covers the deepest transient state.
const stackSlack = 5

// warpState is the struct-of-arrays store for one SMX's resident
// warps. Per-warp fields are dense arrays indexed by warp id; lane
// state (slot map, step results) is flat [n*wsz] indexed w*wsz+l; the
// reconvergence stacks live in fixed per-warp windows of a single
// backing array. The live counter is maintained incrementally by
// setPhase — no code path needs an O(warps) recount.
type warpState struct {
	n    int // resident warps
	wsz  int // lanes per warp
	live int // warps not phaseDone (parked warps count as live)

	phase      []warpPhase
	block      []int32
	activeMask []uint32 // mask captured at block entry
	insRem     []int32
	memRem     []int32
	memIdx     []int32
	readyCycle []int64
	// memReady is when the current block's outstanding memory data
	// arrives; loads issue early and overlap with the block's ALU
	// instructions, so the warp only stalls on it at block completion.
	memReady   []int64
	lastIssued []int64

	// slots maps lane -> kernel context slot (-1 = empty lane);
	// res holds the per-lane results for the current block.
	slots []int32
	res   []StepResult

	// stack[w*stackCap : w*stackCap+stackLen[w]] is warp w's IPDOM
	// reconvergence stack (fixed window, no per-warp allocation).
	stack    []stackEntry
	stackLen []int32
	stackCap int

	// pending holds each warp's L2-bound accesses of the current epoch
	// (epoch-barrier engine only); ResolveEpoch applies and clears them.
	// The slices are reused across epochs and stop growing once warm.
	pending [][]memPending

	// wakeGen counts launches/resumes — the only events that can make a
	// warp issuable *earlier* than its recorded readyCycle (launch
	// resets it to 0; stalls and parks only push wake-ups later). The
	// scheduler's idle cache keys on it: a scan that found nothing
	// issuable stays valid until the recorded wake cycle unless this
	// generation moves.
	wakeGen uint64
}

func newWarpState(n, wsz int) *warpState {
	st := &warpState{
		n:          n,
		wsz:        wsz,
		phase:      make([]warpPhase, n),
		block:      make([]int32, n),
		activeMask: make([]uint32, n),
		insRem:     make([]int32, n),
		memRem:     make([]int32, n),
		memIdx:     make([]int32, n),
		readyCycle: make([]int64, n),
		memReady:   make([]int64, n),
		lastIssued: make([]int64, n),
		slots:      make([]int32, n*wsz),
		res:        make([]StepResult, n*wsz),
		stack:      make([]stackEntry, n*stackSlack*wsz),
		stackLen:   make([]int32, n),
		stackCap:   stackSlack * wsz,
		pending:    make([][]memPending, n),
	}
	for i := range st.phase {
		st.phase[i] = phaseDone
	}
	return st
}

// setPhase transitions warp w's phase, maintaining the live counter
// (live = not done; parked warps count). Every phase write in the
// engine and in the *Warp view goes through here, so the counter is
// exact without any recount scan.
func (st *warpState) setPhase(w int, p warpPhase) {
	old := st.phase[w]
	if old == p {
		return
	}
	st.phase[w] = p
	if old == phaseDone {
		st.live++
	} else if p == phaseDone {
		st.live--
	}
}

// laneBase returns the first flat lane index of warp w.
func (st *warpState) laneBase(w int) int { return w * st.wsz }

// laneSlots returns warp w's lane -> slot window (capacity-clipped so
// appends cannot cross into the next warp).
func (st *warpState) laneSlots(w int) []int32 {
	b := st.laneBase(w)
	return st.slots[b : b+st.wsz : b+st.wsz]
}

// launch (re)starts warp w at block entry with the given lane -> slot
// mapping. A mapping shorter than the warp keeps the previous values of
// the uncovered lanes, exactly like the pre-SoA copy-then-scan did;
// lanes with slot -1 are masked off.
func (st *warpState) launch(w, entry int, slots []int32) {
	st.wakeGen++
	window := st.laneSlots(w)
	copy(window, slots)
	var mask uint32
	for l, s := range window {
		if s >= 0 {
			mask |= 1 << uint(l)
		}
	}
	st.stackLen[w] = 0
	if mask != 0 {
		st.push(w, stackEntry{reconv: noReconv, pc: int32(entry), mask: mask})
		st.setPhase(w, phaseEnter)
	} else {
		st.setPhase(w, phaseDone)
	}
	st.block[w] = int32(entry)
	st.readyCycle[w] = 0
	// Remaps only happen to warps with no in-flight memory (a warp with
	// unresolved L2 requests cannot reach a gate or divergence point
	// before the barrier that resolves them), so this is hygiene.
	st.pending[w] = st.pending[w][:0]
}

// push appends one entry to warp w's reconvergence stack window. The
// window is sized for the deepest transient stack the engine's runaway
// check admits, so no bounds growth can occur.
func (st *warpState) push(w int, e stackEntry) {
	st.stack[w*st.stackCap+int(st.stackLen[w])] = e
	st.stackLen[w]++
}

// top returns a pointer to the top stack entry of warp w (stack must be
// non-empty).
func (st *warpState) top(w int) *stackEntry {
	return &st.stack[w*st.stackCap+int(st.stackLen[w])-1]
}

// topMask returns the active mask of warp w's top stack entry, or 0 if
// the stack is empty.
func (st *warpState) topMask(w int) uint32 {
	if st.stackLen[w] == 0 {
		return 0
	}
	return st.stack[w*st.stackCap+int(st.stackLen[w])-1].mask
}

// retireLanes removes the given lanes from every stack entry of warp w,
// dropping entries that become empty, and clears the lanes' slots.
// Returns the number of lanes retired. This is the bitmask form of lane
// retirement: one AND-NOT per stack entry plus one trailing-zeros scan
// over the retired mask.
func (st *warpState) retireLanes(w int, mask uint32) int {
	if mask == 0 {
		return 0
	}
	n := bits.OnesCount32(mask)
	base := w * st.stackCap
	out := base
	for i := base; i < base+int(st.stackLen[w]); i++ {
		e := st.stack[i]
		e.mask &^= mask
		if e.mask != 0 {
			st.stack[out] = e
			out++
		}
	}
	st.stackLen[w] = int32(out - base)
	lb := st.laneBase(w)
	for m := mask; m != 0; m &= m - 1 {
		st.slots[lb+bits.TrailingZeros32(m)] = -1
	}
	return n
}

// popReconverged pops warp w's stack entries whose pc reached their
// reconvergence block.
func (st *warpState) popReconverged(w int) {
	base := w * st.stackCap
	for st.stackLen[w] > 0 {
		top := st.stack[base+int(st.stackLen[w])-1]
		if top.reconv == noReconv || top.pc != top.reconv {
			return
		}
		st.stackLen[w]--
	}
}
