package simt

import (
	"testing"

	"repro/internal/memsys"
)

func TestSchedPolicyString(t *testing.T) {
	if SchedGTO.String() != "gto" || SchedRR.String() != "rr" {
		t.Errorf("policy names wrong")
	}
	if SchedPolicy(9).String() != "unknown" {
		t.Errorf("unknown policy name")
	}
}

// Both policies must complete the same kernel with identical retirement
// counts and identical total issued instructions (scheduling changes
// timing, not work).
func TestSchedulersDoSameWork(t *testing.T) {
	run := func(pol SchedPolicy) Stats {
		iters := make(map[int32]int)
		k := &testKernel{
			blocks: []BlockInfo{
				{Name: "loop", Insts: 6, Reconv: 1},
				{Name: "tail", Insts: 2},
			},
			step: func(slot int32, block int, res *StepResult) {
				switch block {
				case 0:
					iters[slot]++
					if iters[slot] <= int(slot%7) {
						res.Next = 0
					} else {
						res.Next = 1
					}
				case 1:
					res.Next = BlockExit
				}
			},
		}
		cfg := smallConfig(6)
		cfg.Scheduler = pol
		s := newTestSMX(t, cfg, k, Hooks{})
		s.LaunchAll(0)
		st, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	gto := run(SchedGTO)
	rr := run(SchedRR)
	if gto.Retired != rr.Retired {
		t.Errorf("retired differ: %d vs %d", gto.Retired, rr.Retired)
	}
	if gto.WarpInstrs != rr.WarpInstrs {
		t.Errorf("instructions differ: %d vs %d", gto.WarpInstrs, rr.WarpInstrs)
	}
	if gto.Cycles == 0 || rr.Cycles == 0 {
		t.Errorf("cycles not recorded")
	}
}

// Round-robin must rotate across warps instead of draining one.
func TestRRRotates(t *testing.T) {
	order := make([]int32, 0, 64)
	k := &testKernel{
		blocks: []BlockInfo{{Name: "b", Insts: 1, Reconv: 0}},
		step: func(slot int32, block int, res *StepResult) {
			if slot%32 == 0 { // one recorder lane per warp
				order = append(order, slot/32)
			}
			res.Next = BlockExit
		},
	}
	cfg := smallConfig(4)
	cfg.Scheduler = SchedRR
	cfg.SchedulersPerSMX = 1
	cfg.DispatchPerScheduler = 1
	s := newTestSMX(t, cfg, k, Hooks{})
	s.LaunchAll(0)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("expected 4 warp entries, got %d", len(order))
	}
	seen := map[int32]bool{}
	for _, w := range order {
		if seen[w] {
			t.Fatalf("warp %d entered twice before others finished: %v", w, order)
		}
		seen[w] = true
	}
}

func TestRunFor(t *testing.T) {
	k := &testKernel{
		blocks: []BlockInfo{{Name: "spin", Insts: 4, Reconv: 0}},
		step: func(slot int32, block int, res *StepResult) {
			res.Next = 0 // spin forever
		},
	}
	cfg := smallConfig(1)
	l2 := memsys.NewL2(cfg.Mem)
	s, err := NewSMX(0, cfg, k, Hooks{}, l2)
	if err != nil {
		t.Fatal(err)
	}
	s.LaunchAll(0)
	if err := s.RunFor(100); err != nil {
		t.Fatal(err)
	}
	if c := s.Cycle(); c < 100 || c > 110 {
		t.Errorf("RunFor(100) advanced to cycle %d", c)
	}
	before := s.Cycle()
	if err := s.RunFor(50); err != nil {
		t.Fatal(err)
	}
	if s.Cycle() < before+50 {
		t.Errorf("second RunFor did not advance")
	}
}
