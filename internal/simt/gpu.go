package simt

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/memsys"
	"repro/internal/metrics"
	"repro/internal/regfile"
)

// SMXProgram is everything one SMX needs to run: its kernel instance
// (kernels hold per-SMX state such as the ray pool partition), the
// architecture hooks, and a launch function that sets up the initial
// warp mappings.
type SMXProgram struct {
	Kernel Kernel
	Hooks  Hooks
	// Launch configures the SMX's initial warps. If nil, LaunchAll(0)
	// is used.
	Launch func(s *SMX)
}

// Factory builds the per-SMX program for SMX id. The GPU calls it once
// per SMX before the run starts.
type Factory func(smxID int) (SMXProgram, error)

// GPUResult is the merged outcome of a device run.
type GPUResult struct {
	Stats Stats
	// PerSMX holds each SMX's individual stats.
	PerSMX []Stats
	// L1TexMissRate is the access-weighted L1 texture miss rate over
	// all SMXs (the paper discusses it for the sponza analysis).
	L1TexMissRate float64
	// RFShuffleShare is the access-weighted share of register file
	// accesses caused by ray shuffling (§4.4).
	RFShuffleShare float64
	// RFStats merges the per-SMX register file counters.
	RFStats regfile.Stats
}

// RunGPU simulates the whole device: one goroutine per SMX over a
// shared L2, under the engine selected by cfg.Engine. Device cycles are
// the max over SMXs (they interact only through the L2 in these
// workloads). The default EngineEpoch makes the run bit-reproducible;
// see the Engine constants.
func RunGPU(cfg Config, factory Factory) (*GPUResult, error) {
	return RunGPUCtx(context.Background(), cfg, factory)
}

// RunGPUCtx is RunGPU with cooperative cancellation. The epoch-barrier
// engine checks ctx at every barrier — once per EpochLen device cycles,
// with all SMX workers parked — so a cancelled or expired context stops
// the simulation within one epoch and returns ctx's error. Cancellation
// never yields a partial result (the error return is the only output),
// so it cannot perturb determinism: an uncancelled RunGPUCtx is exactly
// RunGPU. The legacy free-running engine has no safe interruption point
// and only observes ctx before launch.
func RunGPUCtx(ctx context.Context, cfg Config, factory Factory) (*GPUResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("simt: run cancelled before launch: %w", err)
	}
	var shared memsys.SharedL2
	var ordered *memsys.OrderedL2
	if cfg.Engine == EngineFree {
		//drslint:allow shared-l2 -- the legacy free-running engine is the documented exception; every other goroutine-spawning path must use the ordered port
		shared = memsys.NewL2(cfg.Mem)
	} else {
		ordered = memsys.NewOrderedL2(cfg.Mem, cfg.NumSMX)
		shared = ordered
	}
	col := cfg.Collector
	if col != nil {
		if ordered != nil {
			ordered.RegisterMetrics(col.Registry, "l2")
		} else if l2, ok := shared.(*memsys.L2); ok {
			l2.RegisterMetrics(col.Registry, "l2")
		}
	}
	smxs := make([]*SMX, cfg.NumSMX)
	for i := range smxs {
		prog, err := factory(i)
		if err != nil {
			return nil, fmt.Errorf("simt: factory for SMX %d: %w", i, err)
		}
		s, err := NewSMX(i, cfg, prog.Kernel, prog.Hooks, shared)
		if err != nil {
			return nil, err
		}
		if prog.Launch != nil {
			prog.Launch(s)
		} else {
			s.LaunchAll(0)
		}
		smxs[i] = s
		if col != nil {
			s.RegisterMetrics(col.Registry)
			s.RegisterSeries(col.Series)
		}
	}
	if ordered != nil {
		if err := runEpochs(ctx, cfg, smxs, ordered, col); err != nil {
			return nil, err
		}
	} else if err := runFree(smxs); err != nil {
		return nil, err
	}
	res := &GPUResult{PerSMX: make([]Stats, len(smxs))}
	var texAcc, texMiss int64
	for i, s := range smxs {
		st := s.Stats()
		res.PerSMX[i] = st
		res.Stats.Add(st)
		t := s.Mem().L1TexStats()
		texAcc += t.Accesses
		texMiss += t.Misses
		res.RFStats.Add(s.RF().Stats())
	}
	if texAcc > 0 {
		res.L1TexMissRate = float64(texMiss) / float64(texAcc)
	}
	res.RFShuffleShare = res.RFStats.ShuffleShare()
	return res, nil
}

// runFree is the legacy free-running engine: every SMX runs to
// completion on its own goroutine, racing on the locked L2.
func runFree(smxs []*SMX) error {
	errs := make([]error, len(smxs))
	var wg sync.WaitGroup
	for i, s := range smxs {
		wg.Add(1)
		go func(i int, s *SMX) {
			defer wg.Done()
			_, errs[i] = s.Run()
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("simt: SMX %d: %w", i, err)
		}
	}
	return nil
}

// runEpochs is the deterministic epoch-barrier engine. Each epoch, all
// live SMXs advance in parallel to the same device-cycle boundary while
// their L2-bound requests queue on private ports; at the barrier the
// shared L2 drains every queue in fixed (smxID, issue-order) order and
// each SMX applies the resolved hits/misses to its in-flight warps.
// One persistent worker goroutine per SMX avoids a spawn per epoch.
//
// When a collector is attached, the barrier is also the sampling point
// of the epoch time-series: the engine captures each SMX's L2 port
// queue depth just before the drain consumes it, and samples every
// registered column after the drain and resolutions, so cumulative
// columns (instruction counts, cache accesses) are exact through this
// barrier. The sampling runs on the engine goroutine with every worker
// parked, so it is single-threaded and bit-deterministic.
func runEpochs(ctx context.Context, cfg Config, smxs []*SMX, l2 *memsys.OrderedL2, col *metrics.Collector) error {
	epoch := cfg.EpochLen()
	n := len(smxs)
	var depths []int64
	if col != nil {
		depths = make([]int64, n)
		for i, s := range smxs {
			i := i
			col.Series.Column(s.MetricsPrefix()+"/l2_queue", func() int64 { return depths[i] })
		}
		col.Series.Column("l2/accesses", func() int64 { return l2.Stats().Accesses })
		col.Series.Column("l2/misses", func() int64 { return l2.Stats().Misses })
	}
	errs := make([]error, n)
	starts := make([]chan int64, n)
	var done sync.WaitGroup
	for i := range smxs {
		starts[i] = make(chan int64, 1)
		go func(i int, s *SMX, start <-chan int64) {
			for end := range start {
				errs[i] = s.RunEpoch(end)
				done.Done()
			}
		}(i, smxs[i], starts[i])
	}
	defer func() {
		for _, ch := range starts {
			close(ch)
		}
	}()
	var end int64
	for {
		// Cancellation point: the barrier, with every worker parked. The
		// check costs one atomic load per epoch and the abort path
		// returns an error instead of results, so it cannot affect what
		// an uncancelled run computes.
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("simt: run cancelled at device cycle %d: %w", end, err)
		}
		live := false
		for _, s := range smxs {
			if s.LiveWarps() > 0 {
				live = true
				break
			}
		}
		if !live {
			return nil
		}
		end += epoch
		done.Add(n)
		for _, ch := range starts {
			ch <- end
		}
		done.Wait()
		for i, err := range errs {
			if err != nil {
				return fmt.Errorf("simt: SMX %d: %w", i, err)
			}
		}
		// Barrier: canonical drain, then per-SMX resolution (disjoint
		// state, cheap — done inline on the engine goroutine).
		if col != nil {
			for i, s := range smxs {
				depths[i] = int64(s.Mem().Port().Pending())
			}
		}
		l2.Drain()
		for _, s := range smxs {
			s.ResolveEpoch()
		}
		if col != nil {
			col.Series.Sample(end)
		}
	}
}

// Partition splits n work items into parts nearly equal slices,
// returning the [start, end) bounds of part i. Used to split ray
// streams across SMXs.
func Partition(n, parts, i int) (start, end int) {
	if parts <= 0 {
		return 0, n
	}
	base := n / parts
	rem := n % parts
	start = i*base + min(i, rem)
	end = start + base
	if i < rem {
		end++
	}
	return start, end
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
