package simt

import (
	"fmt"
	"sync"

	"repro/internal/memsys"
	"repro/internal/regfile"
)

// SMXProgram is everything one SMX needs to run: its kernel instance
// (kernels hold per-SMX state such as the ray pool partition), the
// architecture hooks, and a launch function that sets up the initial
// warp mappings.
type SMXProgram struct {
	Kernel Kernel
	Hooks  Hooks
	// Launch configures the SMX's initial warps. If nil, LaunchAll(0)
	// is used.
	Launch func(s *SMX)
}

// Factory builds the per-SMX program for SMX id. The GPU calls it once
// per SMX before the run starts.
type Factory func(smxID int) (SMXProgram, error)

// GPUResult is the merged outcome of a device run.
type GPUResult struct {
	Stats Stats
	// PerSMX holds each SMX's individual stats.
	PerSMX []Stats
	// L1TexMissRate is the access-weighted L1 texture miss rate over
	// all SMXs (the paper discusses it for the sponza analysis).
	L1TexMissRate float64
	// RFShuffleShare is the access-weighted share of register file
	// accesses caused by ray shuffling (§4.4).
	RFShuffleShare float64
	// RFStats merges the per-SMX register file counters.
	RFStats regfile.Stats
}

// RunGPU simulates the whole device: one goroutine per SMX over a
// shared L2. Device cycles are the max over SMXs (they interact only
// through the L2 in these workloads).
func RunGPU(cfg Config, factory Factory) (*GPUResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l2 := memsys.NewL2(cfg.Mem)
	smxs := make([]*SMX, cfg.NumSMX)
	for i := range smxs {
		prog, err := factory(i)
		if err != nil {
			return nil, fmt.Errorf("simt: factory for SMX %d: %w", i, err)
		}
		s, err := NewSMX(i, cfg, prog.Kernel, prog.Hooks, l2)
		if err != nil {
			return nil, err
		}
		if prog.Launch != nil {
			prog.Launch(s)
		} else {
			s.LaunchAll(0)
		}
		smxs[i] = s
	}
	errs := make([]error, len(smxs))
	var wg sync.WaitGroup
	for i, s := range smxs {
		wg.Add(1)
		go func(i int, s *SMX) {
			defer wg.Done()
			_, errs[i] = s.Run()
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("simt: SMX %d: %w", i, err)
		}
	}
	res := &GPUResult{PerSMX: make([]Stats, len(smxs))}
	var texAcc, texMiss int64
	for i, s := range smxs {
		st := s.Stats()
		res.PerSMX[i] = st
		res.Stats.Add(st)
		t := s.Mem().L1TexStats()
		texAcc += t.Accesses
		texMiss += t.Misses
		rf := s.RF().Stats()
		res.RFStats.OperandReads += rf.OperandReads
		res.RFStats.OperandWrites += rf.OperandWrites
		res.RFStats.ShuffleReads += rf.ShuffleReads
		res.RFStats.ShuffleWrites += rf.ShuffleWrites
		res.RFStats.BankConflictCycles += rf.BankConflictCycles
		res.RFStats.ShuffleRetryCycles += rf.ShuffleRetryCycles
	}
	if texAcc > 0 {
		res.L1TexMissRate = float64(texMiss) / float64(texAcc)
	}
	res.RFShuffleShare = res.RFStats.ShuffleShare()
	return res, nil
}

// Partition splits n work items into parts nearly equal slices,
// returning the [start, end) bounds of part i. Used to split ray
// streams across SMXs.
func Partition(n, parts, i int) (start, end int) {
	if parts <= 0 {
		return 0, n
	}
	base := n / parts
	rem := n % parts
	start = i*base + min(i, rem)
	end = start + base
	if i < rem {
		end++
	}
	return start, end
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
