package simt

import (
	"testing"

	"repro/internal/memsys"
)

// divergeKernel drives the engine's divergence-split path hard: every
// iteration of its loop body splits the warp four ways (by lane%4) and
// reconverges, `rounds` times per lane. It exists to benchmark
// SMX.resolve's target-gathering, which runs once per completed block
// per warp — the hottest control-flow path of the simulator.
type divergeKernel struct {
	rounds int
	iters  []int
}

func newDivergeKernel(slots, rounds int) *divergeKernel {
	return &divergeKernel{rounds: rounds, iters: make([]int, slots)}
}

func (k *divergeKernel) Blocks() []BlockInfo {
	return []BlockInfo{
		{Name: "head", Insts: 1, Reconv: 5},  // 0: 4-way split point
		{Name: "a", Insts: 1},                // 1
		{Name: "b", Insts: 1},                // 2
		{Name: "c", Insts: 1},                // 3
		{Name: "d", Insts: 1},                // 4
		{Name: "join", Insts: 1}, // 5: loop back or exit (never diverges)
	}
}

func (k *divergeKernel) Entry() int { return 0 }

func (k *divergeKernel) Step(slot int32, block int, res *StepResult) {
	switch block {
	case 0:
		res.Next = 1 + int(slot)%4
	case 1, 2, 3, 4:
		res.Next = 5
	case 5:
		k.iters[slot]++
		if k.iters[slot] < k.rounds {
			res.Next = 0
		} else {
			res.Next = BlockExit
		}
	}
}

func (k *divergeKernel) reset() {
	for i := range k.iters {
		k.iters[i] = 0
	}
}

// BenchmarkDivergeSplit measures the per-divergence cost of the resolve
// path: 8 warps x 64 rounds of a 4-way split + reconverge. B/op is the
// headline number — the split path must not allocate per divergence
// (scratch lives on the SMX, stacks in the store's fixed windows), or
// full-suite runs spend their time in the garbage collector.
func BenchmarkDivergeSplit(b *testing.B) {
	cfg := smallConfig(8)
	k := newDivergeKernel(8*cfg.WarpSize, 64)
	l2 := memsys.NewL2(cfg.Mem)
	s, err := NewSMX(0, cfg, k, Hooks{}, l2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.reset()
		s.LaunchAll(0)
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
