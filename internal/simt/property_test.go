package simt

import (
	"math/rand"
	"testing"
)

// scriptKernel drives each slot through a pre-generated random control
// flow over a structured graph (outer loop containing an inner loop and
// an if/else). The engine's reconvergence machinery must execute every
// slot's exact block sequence regardless of how warps are scheduled or
// how divergence interleaves.
type scriptKernel struct {
	blocks []BlockInfo
	// per-slot script
	rounds  []int   // outer loop rounds
	iters   [][]int // inner loop iterations per round
	takeIf  [][]bool
	round   []int
	iter    []int
	visited [][]int // executed block trace per slot
}

const (
	sbOuter = 0 // outer loop body head
	sbInner = 1 // inner loop block
	sbCond  = 2 // if condition
	sbThen  = 3
	sbElse  = 4
	sbJoin  = 5 // if join + outer loop latch
)

func newScriptKernel(slots int, seed int64) *scriptKernel {
	rnd := rand.New(rand.NewSource(seed))
	k := &scriptKernel{
		blocks: []BlockInfo{
			sbOuter: {Name: "outer", Insts: 2},
			sbInner: {Name: "inner", Insts: 3, Reconv: sbCond},
			sbCond:  {Name: "cond", Insts: 1, Reconv: sbJoin},
			sbThen:  {Name: "then", Insts: 2},
			sbElse:  {Name: "else", Insts: 4},
			sbJoin:  {Name: "join", Insts: 2, Reconv: sbOuter},
		},
		rounds:  make([]int, slots),
		iters:   make([][]int, slots),
		takeIf:  make([][]bool, slots),
		round:   make([]int, slots),
		iter:    make([]int, slots),
		visited: make([][]int, slots),
	}
	for s := 0; s < slots; s++ {
		k.rounds[s] = 1 + rnd.Intn(3)
		for r := 0; r < k.rounds[s]; r++ {
			k.iters[s] = append(k.iters[s], 1+rnd.Intn(4))
			k.takeIf[s] = append(k.takeIf[s], rnd.Intn(2) == 0)
		}
	}
	return k
}

func (k *scriptKernel) Blocks() []BlockInfo { return k.blocks }
func (k *scriptKernel) Entry() int          { return sbOuter }

func (k *scriptKernel) Step(slot int32, block int, res *StepResult) {
	s := int(slot)
	k.visited[s] = append(k.visited[s], block)
	switch block {
	case sbOuter:
		k.iter[s] = 0
		res.Next = sbInner
	case sbInner:
		k.iter[s]++
		if k.iter[s] < k.iters[s][k.round[s]] {
			res.Next = sbInner
		} else {
			res.Next = sbCond
		}
	case sbCond:
		if k.takeIf[s][k.round[s]] {
			res.Next = sbThen
		} else {
			res.Next = sbElse
		}
	case sbThen, sbElse:
		res.Next = sbJoin
	case sbJoin:
		k.round[s]++
		if k.round[s] < k.rounds[s] {
			res.Next = sbOuter
		} else {
			res.Next = BlockExit
		}
	}
}

// expected reconstructs the block trace slot s should have executed.
func (k *scriptKernel) expected(s int) []int {
	var out []int
	for r := 0; r < k.rounds[s]; r++ {
		out = append(out, sbOuter)
		for i := 0; i < k.iters[s][r]; i++ {
			out = append(out, sbInner)
		}
		out = append(out, sbCond)
		if k.takeIf[s][r] {
			out = append(out, sbThen)
		} else {
			out = append(out, sbElse)
		}
		out = append(out, sbJoin)
	}
	return out
}

func TestRandomScriptsExecuteExactly(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		for _, pol := range []SchedPolicy{SchedGTO, SchedRR} {
			warps := 5
			k := newScriptKernel(warps*32, seed)
			cfg := smallConfig(warps)
			cfg.Scheduler = pol
			s := newTestSMX(t, cfg, k, Hooks{})
			s.LaunchAll(0)
			st, err := s.Run()
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, pol, err)
			}
			if st.Retired != int64(warps*32) {
				t.Fatalf("seed %d %v: retired %d", seed, pol, st.Retired)
			}
			for slot := 0; slot < warps*32; slot++ {
				want := k.expected(slot)
				got := k.visited[slot]
				if len(got) != len(want) {
					t.Fatalf("seed %d %v slot %d: trace length %d, want %d\n got %v\nwant %v",
						seed, pol, slot, len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("seed %d %v slot %d: step %d block %d, want %d",
							seed, pol, slot, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// Instruction accounting property: total active-thread instruction mass
// must equal the per-slot sum of visited blocks' instruction counts.
func TestInstructionMassConserved(t *testing.T) {
	warps := 4
	k := newScriptKernel(warps*32, 42)
	cfg := smallConfig(warps)
	s := newTestSMX(t, cfg, k, Hooks{})
	s.LaunchAll(0)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for slot := 0; slot < warps*32; slot++ {
		for _, b := range k.visited[slot] {
			want += int64(k.blocks[b].Insts)
		}
	}
	if st.ActiveThreadSum != want {
		t.Errorf("active thread-instruction mass %d, want %d", st.ActiveThreadSum, want)
	}
}
