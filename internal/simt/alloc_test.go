package simt

import (
	"testing"

	"repro/internal/memsys"
)

// memDivergeKernel combines the two per-cycle stress paths: every loop
// iteration splits the warp four ways, reconverges, and issues one
// coalesced texture load per arm — so a steady run exercises issue,
// divergence resolve, the memory path and (on an ordered L2) the epoch
// drain, forever.
type memDivergeKernel struct{}

func (memDivergeKernel) Blocks() []BlockInfo {
	return []BlockInfo{
		{Name: "head", Insts: 1, Reconv: 5}, // 0: 4-way split point
		{Name: "a", Insts: 1, MemInsts: 1},  // 1
		{Name: "b", Insts: 1, MemInsts: 1},  // 2
		{Name: "c", Insts: 1, MemInsts: 1},  // 3
		{Name: "d", Insts: 1, MemInsts: 1},  // 4
		{Name: "join", Insts: 1},            // 5: loop back, never exits
	}
}

func (memDivergeKernel) Entry() int { return 0 }

func (memDivergeKernel) Step(slot int32, block int, res *StepResult) {
	switch block {
	case 0:
		res.Next = 1 + int(slot)%4
	case 1, 2, 3, 4:
		res.Next = 5
		res.NMem = 1
		res.Mem[0] = MemAccess{Addr: uint64(slot) * 64, Bytes: 4, Space: memsys.Tex}
	case 5:
		res.Next = 0
	}
}

// TestSteadyCycleLoopZeroAlloc pins the SoA core's headline property:
// once warm, the per-cycle loop — scheduling, issue, the memory path,
// divergence resolve and the epoch drain — performs zero heap
// allocations. All scratch lives in the SMX (lane/target/vote buffers)
// or the warpState store (stack windows, pending records), sized at
// NewSMX; anything that allocates per cycle turns full-suite runs into
// GC benchmarks. The //drslint:hotpath lint enforces this statically;
// this test enforces it against the allocator itself.
func TestSteadyCycleLoopZeroAlloc(t *testing.T) {
	cfg := smallConfig(8)
	ordered := memsys.NewOrderedL2(cfg.Mem, 1)
	s, err := NewSMX(0, cfg, memDivergeKernel{}, Hooks{}, ordered)
	if err != nil {
		t.Fatal(err)
	}
	s.LaunchAll(0)

	epoch := func() {
		if err := s.RunEpoch(s.Cycle() + 64); err != nil {
			t.Fatal(err)
		}
		ordered.Drain()
		s.ResolveEpoch()
	}
	// Warm-up: let every reusable buffer (pending records, L2 port
	// queues, resolve scratch) reach its steady capacity.
	for i := 0; i < 50; i++ {
		epoch()
	}
	if s.LiveWarps() == 0 {
		t.Fatal("kernel retired during warm-up; the steady-state measurement would be vacuous")
	}

	if avg := testing.AllocsPerRun(20, epoch); avg != 0 {
		t.Errorf("steady-state cycle loop allocates: %.1f allocs per 64-cycle epoch (want 0)", avg)
	}
	if s.LiveWarps() == 0 {
		t.Fatal("kernel retired during measurement")
	}
}
