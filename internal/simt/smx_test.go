package simt

import (
	"strings"
	"testing"

	"repro/internal/memsys"
)

// testKernel is a configurable synthetic kernel for engine tests. Each
// slot carries a small scripted state machine.
type testKernel struct {
	blocks []BlockInfo
	entry  int
	// step is the per-slot semantic function.
	step func(slot int32, block int, res *StepResult)
	// vote, if set, makes the kernel a WarpVoter.
	vote func(warp, block int, slots []int32, res []*StepResult)
}

func (k *testKernel) Blocks() []BlockInfo { return k.blocks }
func (k *testKernel) Entry() int          { return k.entry }
func (k *testKernel) Step(slot int32, block int, res *StepResult) {
	k.step(slot, block, res)
}

type votingKernel struct{ *testKernel }

func (k votingKernel) Vote(warp, block int, slots []int32, res []*StepResult) {
	k.vote(warp, block, slots, res)
}

func smallConfig(warps int) Config {
	cfg := DefaultConfig()
	cfg.NumSMX = 1
	cfg.MaxWarpsPerSMX = warps
	cfg.MaxCycles = 1 << 22
	return cfg
}

func newTestSMX(t *testing.T, cfg Config, k Kernel, hooks Hooks) *SMX {
	t.Helper()
	l2 := memsys.NewL2(cfg.Mem)
	s, err := NewSMX(0, cfg, k, hooks, l2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// A straight-line kernel: one block, every lane exits after it.
func TestStraightLineKernel(t *testing.T) {
	k := &testKernel{
		blocks: []BlockInfo{{Name: "body", Insts: 10}},
		step: func(slot int32, block int, res *StepResult) {
			res.Next = BlockExit
		},
	}
	cfg := smallConfig(2)
	s := newTestSMX(t, cfg, k, Hooks{})
	s.LaunchAll(0)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.WarpInstrs != 20 {
		t.Errorf("warp instrs = %d, want 20 (2 warps x 10)", st.WarpInstrs)
	}
	if got := st.SIMDEfficiency(32); got != 1 {
		t.Errorf("efficiency = %v, want 1", got)
	}
	if st.Retired != 64 {
		t.Errorf("retired = %d, want 64", st.Retired)
	}
	if st.Cycles == 0 {
		t.Errorf("no cycles recorded")
	}
}

// A loop kernel where lane l iterates l+1 times: classic loop
// divergence. Total thread-iterations = sum(l+1) = 528 per warp; the
// warp must run 32 iterations of the loop block (the longest lane).
func TestLoopDivergence(t *testing.T) {
	iters := make(map[int32]int)
	k := &testKernel{
		blocks: []BlockInfo{
			{Name: "loop", Insts: 4, Reconv: 1},
			{Name: "tail", Insts: 2},
		},
		step: func(slot int32, block int, res *StepResult) {
			switch block {
			case 0:
				iters[slot]++
				if iters[slot] <= int(slot%32) { // lane l loops l+1 times total
					res.Next = 0
				} else {
					res.Next = 1
				}
			case 1:
				res.Next = BlockExit
			}
		},
	}
	cfg := smallConfig(1)
	s := newTestSMX(t, cfg, k, Hooks{})
	s.LaunchAll(0)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Block 0 executes 32 times (lane 31 needs 32 iterations); its
	// instruction issues = 32 iterations * 4 insts. Active threads
	// shrink by one each iteration: sum over iterations of active =
	// (32+31+...+1) * 4 insts.
	wantInstrs := int64(32*4 + 2)
	if st.WarpInstrs != wantInstrs {
		t.Errorf("warp instrs = %d, want %d", st.WarpInstrs, wantInstrs)
	}
	wantActive := int64((32*33/2)*4 + 32*2)
	if st.ActiveThreadSum != wantActive {
		t.Errorf("active sum = %d, want %d", st.ActiveThreadSum, wantActive)
	}
	eff := st.SIMDEfficiency(32)
	if eff > 0.60 || eff < 0.45 {
		t.Errorf("loop divergence efficiency = %v, want ~0.52", eff)
	}
}

// If-else divergence with reconvergence: lanes split by parity, run
// different blocks, and reconverge with full mask afterwards.
func TestIfElseReconverges(t *testing.T) {
	var joinActive []int
	k := &testKernel{
		blocks: []BlockInfo{
			{Name: "cond", Insts: 2, Reconv: 3},
			{Name: "then", Insts: 5},
			{Name: "else", Insts: 5},
			{Name: "join", Insts: 2},
		},
		step: func(slot int32, block int, res *StepResult) {
			switch block {
			case 0:
				if slot%2 == 0 {
					res.Next = 1
				} else {
					res.Next = 2
				}
			case 1, 2:
				res.Next = 3
			case 3:
				res.Next = BlockExit
			}
		},
	}
	cfg := smallConfig(1)
	s := newTestSMX(t, cfg, k, Hooks{})
	// Record join activity via the histogram after the run.
	s.LaunchAll(0)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	_ = joinActive
	// cond: 2 instrs @32; then: 5 @16; else: 5 @16; join: 2 @32.
	if st.WarpInstrs != 14 {
		t.Errorf("instrs = %d, want 14", st.WarpInstrs)
	}
	if st.ActiveHist[32] != 4 || st.ActiveHist[16] != 10 {
		t.Errorf("hist: @32=%d @16=%d", st.ActiveHist[32], st.ActiveHist[16])
	}
}

// Nested divergence: outer split by parity, inner split by slot/2
// parity; stack must unwind correctly and all 32 lanes retire.
func TestNestedDivergence(t *testing.T) {
	k := &testKernel{
		blocks: []BlockInfo{
			{Name: "outer", Insts: 1, Reconv: 5},
			{Name: "a", Insts: 1, Reconv: 4},
			{Name: "b", Insts: 1},
			{Name: "c", Insts: 1},
			{Name: "ajoin", Insts: 1},
			{Name: "end", Insts: 1},
		},
		step: func(slot int32, block int, res *StepResult) {
			switch block {
			case 0:
				if slot%2 == 0 {
					res.Next = 1
				} else {
					res.Next = 5
				}
			case 1:
				if (slot/2)%2 == 0 {
					res.Next = 2
				} else {
					res.Next = 3
				}
			case 2, 3:
				res.Next = 4
			case 4:
				res.Next = 5
			case 5:
				res.Next = BlockExit
			}
		},
	}
	cfg := smallConfig(1)
	s := newTestSMX(t, cfg, k, Hooks{})
	s.LaunchAll(0)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired != 32 {
		t.Errorf("retired = %d, want 32", st.Retired)
	}
	// end must run once with all 32 lanes (full reconvergence).
	if st.ActiveHist[32] < 2 { // outer + end
		t.Errorf("expected full-mask blocks, hist32 = %d", st.ActiveHist[32])
	}
}

// Memory instructions stall the warp and hit the cache model.
func TestMemoryStalls(t *testing.T) {
	k := &testKernel{
		blocks: []BlockInfo{{Name: "load", Insts: 1, MemInsts: 1}},
		step: func(slot int32, block int, res *StepResult) {
			res.Next = BlockExit
			res.NMem = 1
			res.Mem[0] = MemAccess{Addr: uint64(slot) * 128 * 5, Bytes: 4, Space: memsys.Tex}
		},
	}
	cfg := smallConfig(1)
	s := newTestSMX(t, cfg, k, Hooks{})
	s.LaunchAll(0)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.MemInstrs != 1 {
		t.Errorf("mem instrs = %d", st.MemInstrs)
	}
	if st.MemTransactions != 32 {
		t.Errorf("transactions = %d, want 32 (fully scattered)", st.MemTransactions)
	}
	if st.Cycles < int64(cfg.Mem.L1HitLat) {
		t.Errorf("cycles %d too low for a memory stall", st.Cycles)
	}
}

// The gate can stall and then exit warps.
func TestGateStallAndExit(t *testing.T) {
	k := &testKernel{
		blocks: []BlockInfo{{Name: "gated", Insts: 1, Gated: true, Tag: TagCtrl}},
		step: func(slot int32, block int, res *StepResult) {
			res.Next = 0 // loop forever; the gate terminates the warp
		},
	}
	calls := 0
	hooks := Hooks{
		Gate: func(s *SMX, warp int, now int64) GateResult {
			calls++
			switch {
			case calls <= 3:
				return GateStall
			case calls <= 6:
				return GateProceed
			default:
				return GateExit
			}
		},
	}
	cfg := smallConfig(1)
	s := newTestSMX(t, cfg, k, hooks)
	s.LaunchAll(0)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.CtrlStalls != 3 {
		t.Errorf("ctrl stalls = %d, want 3", st.CtrlStalls)
	}
	if st.CtrlInstrs != 3 {
		t.Errorf("ctrl instrs = %d, want 3", st.CtrlInstrs)
	}
	if rate := st.CtrlStallRate(); rate != 0.5 {
		t.Errorf("stall rate = %v, want 0.5", rate)
	}
}

// The warp voter can rewrite targets warp-wide.
func TestWarpVote(t *testing.T) {
	base := &testKernel{
		blocks: []BlockInfo{
			{Name: "split", Insts: 1, Reconv: 2},
			{Name: "odd", Insts: 1},
			{Name: "end", Insts: 1},
		},
		step: func(slot int32, block int, res *StepResult) {
			switch block {
			case 0:
				if slot%2 == 0 {
					res.Next = 2
				} else {
					res.Next = 1
				}
			case 1:
				res.Next = 2
			case 2:
				res.Next = BlockExit
			}
		},
	}
	base.vote = func(warp, block int, slots []int32, res []*StepResult) {
		if block != 0 {
			return
		}
		// Override: everyone goes straight to end (suppress divergence).
		for _, r := range res {
			r.Next = 2
		}
	}
	cfg := smallConfig(1)
	s := newTestSMX(t, cfg, votingKernel{base}, Hooks{})
	s.LaunchAll(0)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Without the vote: 1@32 + 1@16 + 1@32 = 3 instrs. With it: 2 instrs @32.
	if st.WarpInstrs != 2 {
		t.Errorf("instrs = %d, want 2 (vote suppressed divergence)", st.WarpInstrs)
	}
	if st.SIMDEfficiency(32) != 1 {
		t.Errorf("efficiency = %v", st.SIMDEfficiency(32))
	}
}

// OnDiverge hook takes over warp formation.
func TestOnDivergeHook(t *testing.T) {
	k := &testKernel{
		blocks: []BlockInfo{
			{Name: "split", Insts: 1, Reconv: 1},
			{Name: "end", Insts: 1},
		},
		step: func(slot int32, block int, res *StepResult) {
			switch block {
			case 0:
				if slot%2 == 0 {
					res.Next = 1
				} else {
					res.Next = 0
				}
			case 1:
				res.Next = BlockExit
			}
		},
	}
	handled := 0
	hooks := Hooks{
		OnDiverge: func(s *SMX, warp, block int, lanes, targets []int) bool {
			handled++
			// Send the whole warp to end with its current slots.
			w := s.Warp(warp)
			slots := make([]int32, len(w.Slots()))
			copy(slots, w.Slots())
			w.SetMapping(slots, 1)
			return true
		},
	}
	cfg := smallConfig(1)
	s := newTestSMX(t, cfg, k, hooks)
	s.LaunchAll(0)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if handled != 1 {
		t.Errorf("OnDiverge called %d times, want 1", handled)
	}
	if st.Retired != 32 {
		t.Errorf("retired = %d", st.Retired)
	}
}

// Deadlocked warps (gate never opens) must be reported, not hang.
func TestDeadlockDetected(t *testing.T) {
	k := &testKernel{
		blocks: []BlockInfo{{Name: "gated", Insts: 1, Gated: true}},
		step:   func(slot int32, block int, res *StepResult) { res.Next = 0 },
	}
	hooks := Hooks{Gate: func(s *SMX, warp int, now int64) GateResult { return GateStall }}
	cfg := smallConfig(1)
	cfg.MaxCycles = 2000
	s := newTestSMX(t, cfg, k, hooks)
	s.LaunchAll(0)
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "cycles") {
		t.Errorf("expected deadlock error, got %v", err)
	}
}

func TestNewSMXValidation(t *testing.T) {
	cfg := smallConfig(1)
	l2 := memsys.NewL2(cfg.Mem)
	if _, err := NewSMX(0, cfg, nil, Hooks{}, l2); err == nil {
		t.Errorf("nil kernel accepted")
	}
	k := &testKernel{blocks: []BlockInfo{}, step: func(int32, int, *StepResult) {}}
	if _, err := NewSMX(0, cfg, k, Hooks{}, l2); err == nil {
		t.Errorf("empty program accepted")
	}
	bad := cfg
	bad.WarpSize = 0
	k2 := &testKernel{blocks: []BlockInfo{{Insts: 1}}, step: func(int32, int, *StepResult) {}}
	if _, err := NewSMX(0, bad, k2, Hooks{}, l2); err == nil {
		t.Errorf("invalid config accepted")
	}
}

func TestPartition(t *testing.T) {
	total := 0
	for i := 0; i < 15; i++ {
		s, e := Partition(103, 15, i)
		if e < s {
			t.Fatalf("part %d inverted: [%d,%d)", i, s, e)
		}
		total += e - s
	}
	if total != 103 {
		t.Errorf("partition lost items: %d", total)
	}
	s, e := Partition(5, 0, 0)
	if s != 0 || e != 5 {
		t.Errorf("degenerate partition = [%d,%d)", s, e)
	}
}

func TestStatsAddAndBreakdown(t *testing.T) {
	var a, b Stats
	a.Cycles = 10
	b.Cycles = 20
	a.WarpInstrs = 4
	a.ActiveHist[32] = 2
	a.ActiveHist[8] = 2
	a.ActiveThreadSum = 2*32 + 2*8
	b.WarpInstrs = 1
	b.ActiveHist[16] = 1
	b.ActiveThreadSum = 16
	a.Add(b)
	if a.Cycles != 20 {
		t.Errorf("cycles should take max: %d", a.Cycles)
	}
	if a.WarpInstrs != 5 {
		t.Errorf("instrs = %d", a.WarpInstrs)
	}
	bd := a.UtilizationBreakdown(32)
	if bd.W1to8 != 0.4 || bd.W9to16 != 0.2 || bd.W25to32 != 0.4 {
		t.Errorf("breakdown = %+v", bd)
	}
	if eff := a.SIMDEfficiency(32); eff < 0.59 || eff > 0.61 {
		t.Errorf("efficiency = %v", eff)
	}
}

func TestMraysPerSec(t *testing.T) {
	var s Stats
	s.Cycles = 980_000_000 // one second at 980 MHz
	if got := s.MraysPerSec(200_000_000, 980); got < 199.9 || got > 200.1 {
		t.Errorf("Mrays = %v, want 200", got)
	}
	var empty Stats
	if empty.MraysPerSec(100, 980) != 0 {
		t.Errorf("empty stats should give 0")
	}
}

// GPU run with multiple SMXs merges stats and uses the shared L2.
func TestRunGPU(t *testing.T) {
	cfg := smallConfig(2)
	cfg.NumSMX = 4
	factory := func(id int) (SMXProgram, error) {
		k := &testKernel{
			blocks: []BlockInfo{{Name: "b", Insts: 3, MemInsts: 1}},
			step: func(slot int32, block int, res *StepResult) {
				res.Next = BlockExit
				res.NMem = 1
				res.Mem[0] = MemAccess{Addr: 0x1000, Bytes: 4, Space: memsys.Tex}
			},
		}
		return SMXProgram{Kernel: k}, nil
	}
	res, err := RunGPU(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerSMX) != 4 {
		t.Errorf("per-SMX stats = %d", len(res.PerSMX))
	}
	if res.Stats.WarpInstrs != 4*2*4 {
		t.Errorf("instrs = %d, want 32", res.Stats.WarpInstrs)
	}
	if res.Stats.Retired != 4*2*32 {
		t.Errorf("retired = %d", res.Stats.Retired)
	}
}
