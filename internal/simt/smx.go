package simt

import (
	"fmt"
	"math/bits"

	"repro/internal/memsys"
	"repro/internal/metrics"
	"repro/internal/regfile"
)

// SMX is one streaming multiprocessor: a set of resident warps driven
// by greedy-then-oldest schedulers, a banked register file, and private
// L1 caches over the shared L2. An SMX is single-goroutine; the GPU
// runs one goroutine per SMX.
type SMX struct {
	ID     int
	cfg    Config
	kernel Kernel
	voter  WarpVoter
	hooks  Hooks

	warps  []*Warp
	mem    *memsys.SMXMem
	rf     *regfile.File
	blocks []BlockInfo

	cycle    int64
	liveWarp int // count of warps not Done
	stats    Stats

	// greedy scheduler state: last warp issued per scheduler
	lastWarp []int

	defaultSrcOps int
}

// NewSMX builds one SMX running kernel with the given hooks, attached
// to the shared L2 (the locked free-running memsys.L2 or the ordered
// memsys.OrderedL2, whose per-SMX port is selected by id).
func NewSMX(id int, cfg Config, kernel Kernel, hooks Hooks, l2 memsys.SharedL2) (*SMX, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if kernel == nil {
		return nil, fmt.Errorf("simt: nil kernel")
	}
	blocks := kernel.Blocks()
	if len(blocks) == 0 {
		return nil, fmt.Errorf("simt: kernel has no blocks")
	}
	for i, b := range blocks {
		if b.Insts <= 0 && b.MemInsts <= 0 {
			return nil, fmt.Errorf("simt: block %d (%s) has no instructions", i, b.Name)
		}
	}
	s := &SMX{
		ID:            id,
		cfg:           cfg,
		kernel:        kernel,
		hooks:         hooks,
		blocks:        blocks,
		mem:           memsys.NewSMXMemShared(cfg.Mem, id, l2),
		rf:            regfile.New(cfg.RF),
		lastWarp:      make([]int, cfg.SchedulersPerSMX),
		defaultSrcOps: 2,
	}
	if v, ok := kernel.(WarpVoter); ok {
		s.voter = v
	}
	s.warps = make([]*Warp, cfg.MaxWarpsPerSMX)
	for i := range s.warps {
		s.warps[i] = newWarp(i, cfg.WarpSize)
	}
	for i := range s.lastWarp {
		s.lastWarp[i] = -1
	}
	return s, nil
}

// LaunchAll starts every warp at the kernel entry with the identity
// mapping slotBase + warp*warpSize + lane.
func (s *SMX) LaunchAll(slotBase int32) {
	slots := make([]int32, s.cfg.WarpSize)
	for _, w := range s.warps {
		for l := range slots {
			slots[l] = slotBase + int32(w.id*s.cfg.WarpSize+l)
		}
		w.Launch(s.kernel.Entry(), slots)
	}
	s.recountLive()
}

// LaunchMapped starts warp w at the entry block with an explicit
// mapping (used by the DRS wiring, where warps map to rows).
//drslint:hotpath
func (s *SMX) LaunchMapped(warp int, slots []int32) {
	s.warps[warp].Launch(s.kernel.Entry(), slots)
	s.recountLive()
}

func (s *SMX) recountLive() {
	s.liveWarp = 0
	for _, w := range s.warps {
		if !w.Done() {
			s.liveWarp++
		}
	}
}

// Warp returns warp i (architecture hooks use this to re-form warps).
func (s *SMX) Warp(i int) *Warp { return s.warps[i] }

// NumWarps returns the number of resident warps.
func (s *SMX) NumWarps() int { return len(s.warps) }

// Cycle returns the current cycle.
func (s *SMX) Cycle() int64 { return s.cycle }

// Mem returns the SMX's memory hierarchy view.
func (s *SMX) Mem() *memsys.SMXMem { return s.mem }

// RF returns the SMX's register file model.
func (s *SMX) RF() *regfile.File { return s.rf }

// Stats returns a snapshot of the SMX's counters.
func (s *SMX) Stats() Stats {
	st := s.stats
	st.Cycles = s.cycle
	return st
}

// Config returns the SMX's configuration.
func (s *SMX) Config() Config { return s.cfg }

// MetricsPrefix returns the SMX's path prefix in the unified registry
// ("smx3"). Architecture wrappers append their own segment
// ("smx3/drs").
func (s *SMX) MetricsPrefix() string { return fmt.Sprintf("smx%d", s.ID) }

// RegisterMetrics registers every counter the SMX owns into the
// unified registry under smx<N>/...: the engine's issue/divergence
// counters (smx<N>/warp_instrs, ...), the live cycle and warp gauges,
// the private caches (smx<N>/l1d/..., smx<N>/l1t/...) and the register
// file (smx<N>/rf/...). Probes read the live fields; nothing on the
// per-cycle path changes.
func (s *SMX) RegisterMetrics(reg *metrics.Registry) {
	p := s.MetricsPrefix()
	reg.Counter(p+"/cycles", &s.cycle)
	reg.Gauge(p+"/live_warps", func() int64 { return int64(s.liveWarp) })
	reg.RegisterStruct(p, &s.stats)
	s.mem.RegisterMetrics(reg, p)
	s.rf.RegisterMetrics(reg, p+"/rf")
}

// RegisterSeries registers the SMX's per-epoch time-series columns:
// occupancy (live warps), cumulative issued warp instructions, and the
// cumulative warp-state census counters the trace exporter turns into
// exec/mem/gate/parked phase slices. The engine samples the columns at
// every epoch barrier, when no SMX goroutine is running.
func (s *SMX) RegisterSeries(se *metrics.Series) {
	p := s.MetricsPrefix()
	se.Column(p+"/live_warps", func() int64 { return int64(s.liveWarp) })
	se.Column(p+"/warp_instrs", func() int64 { return s.stats.WarpInstrs })
	se.Column(p+"/sampled_exec", func() int64 { return s.stats.SampledExec })
	se.Column(p+"/sampled_mem", func() int64 { return s.stats.SampledMem })
	se.Column(p+"/sampled_gate", func() int64 { return s.stats.SampledGate })
	se.Column(p+"/sampled_parked", func() int64 { return s.stats.SampledParked })
}

// Run executes until all warps are done, returning the final stats.
func (s *SMX) Run() (Stats, error) {
	maxCycles := s.cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	for s.liveWarp > 0 {
		s.step()
		if s.cycle > maxCycles {
			return s.Stats(), fmt.Errorf("simt: SMX %d exceeded %d cycles (%d warps live; deadlock?)",
				s.ID, maxCycles, s.liveWarp)
		}
	}
	return s.Stats(), nil
}

// RunEpoch advances the SMX to device cycle `end` (or until all its
// warps are done), leaving this epoch's L2-bound requests queued on the
// SMX's port. The epoch-barrier engine calls it from the SMX's worker
// goroutine, then — after the device-wide ordered drain — ResolveEpoch
// from the barrier. The engine guarantees end-start never exceeds
// Config.EpochLen, so no queued request's data could have been needed
// before the barrier.
func (s *SMX) RunEpoch(end int64) error {
	maxCycles := s.cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	for s.liveWarp > 0 && s.cycle < end {
		s.step()
		if s.cycle > maxCycles {
			return fmt.Errorf("simt: SMX %d exceeded %d cycles (%d warps live; deadlock?)",
				s.ID, maxCycles, s.liveWarp)
		}
	}
	return nil
}

// ResolveEpoch applies the epoch drain's hit/miss outcomes to warps
// with in-flight memory and clears the SMX's port queue. The engine
// calls it at the barrier, never concurrently with RunEpoch. A warp
// whose access missed the L2 has its ready cycle raised from the
// provisional (L2-hit) estimate to the full DRAM round trip; the
// estimate always reaches past the barrier, so the correction is never
// late.
//drslint:hotpath
func (s *SMX) ResolveEpoch() {
	port := s.mem.Port()
	if port == nil || port.Pending() == 0 {
		return
	}
	for _, w := range s.warps {
		for _, p := range w.pending {
			if !port.AnyMissed(p.first, p.count) {
				continue
			}
			if w.phase == phaseExec {
				// Block still executing: the latency is exposed at block
				// completion via memReady.
				if p.missReady > w.memReady {
					w.memReady = p.missReady
				}
			} else if p.missReady > w.readyCycle {
				// Block completed inside the epoch: completion moved the
				// provisional memReady into readyCycle; raise it there.
				w.readyCycle = p.missReady
			}
		}
		w.pending = w.pending[:0]
	}
	port.Reset()
}

// RunFor advances the SMX by at most n cycles, stopping early if all
// warps finish. Useful for interactive inspection and incremental
// drivers.
func (s *SMX) RunFor(n int64) error {
	maxCycles := s.cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	for end := s.cycle + n; s.liveWarp > 0 && s.cycle < end; {
		s.step()
		if s.cycle > maxCycles {
			return fmt.Errorf("simt: SMX %d exceeded %d cycles (%d warps live; deadlock?)",
				s.ID, maxCycles, s.liveWarp)
		}
	}
	return nil
}

// step advances the SMX by one cycle.
//drslint:hotpath
func (s *SMX) step() {
	s.cycle++
	s.rf.Advance(s.cycle)
	if s.hooks.Tick != nil {
		s.hooks.Tick(s, s.cycle)
	}
	if s.cycle%64 == 0 {
		for _, w := range s.warps {
			switch {
			case w.phase == phaseDone:
				s.stats.SampledDone++
			case w.phase == phaseParked:
				s.stats.SampledParked++
			case w.readyCycle > s.cycle+1:
				s.stats.SampledMem++
			case w.readyCycle == s.cycle+1 && w.phase == phaseEnter:
				s.stats.SampledGate++
			default:
				s.stats.SampledExec++
			}
		}
	}
	nsched := s.cfg.SchedulersPerSMX
	for sched := 0; sched < nsched; sched++ {
		s.stats.IssueSlotsTotal += int64(s.cfg.DispatchPerScheduler)
		// A scheduler keeps trying candidate warps until one issues:
		// every failed issue attempt (gate stall, memory stall, warp
		// retirement) leaves the warp non-issuable this cycle, so the
		// loop terminates.
		guard := 0
		for {
			w := s.pickWarp(sched)
			if w == nil {
				break
			}
			if !s.issueOne(w) {
				guard++
				if guard > len(s.warps) {
					break
				}
				continue
			}
			s.stats.IssueSlotsUsed++
			w.lastIssued = s.cycle
			s.lastWarp[sched] = w.id
			for d := 1; d < s.cfg.DispatchPerScheduler; d++ {
				if !s.issueOne(w) {
					break
				}
				s.stats.IssueSlotsUsed++
			}
			break
		}
	}
}

// pickWarp selects the next warp for a scheduler according to the
// configured policy.
func (s *SMX) pickWarp(sched int) *Warp {
	if s.cfg.Scheduler == SchedRR {
		return s.pickRR(sched)
	}
	// Greedy-then-oldest: prefer the warp this scheduler issued from
	// last; otherwise the ready warp that has waited longest (oldest
	// lastIssued, then lowest id).
	if last := s.lastWarp[sched]; last >= 0 {
		w := s.warps[last]
		if w.id%s.cfg.SchedulersPerSMX == sched && s.issuable(w) {
			return w
		}
	}
	var best *Warp
	for i := sched; i < len(s.warps); i += s.cfg.SchedulersPerSMX {
		w := s.warps[i]
		if !s.issuable(w) {
			continue
		}
		if best == nil || w.lastIssued < best.lastIssued ||
			(w.lastIssued == best.lastIssued && w.id < best.id) {
			best = w
		}
	}
	return best
}

// pickRR rotates through the scheduler's warps, starting after the one
// it issued from last.
func (s *SMX) pickRR(sched int) *Warp {
	n := s.cfg.SchedulersPerSMX
	count := (len(s.warps) - sched + n - 1) / n
	if count <= 0 {
		return nil
	}
	start := 0
	if last := s.lastWarp[sched]; last >= 0 {
		start = (last-sched)/n + 1
	}
	for k := 0; k < count; k++ {
		idx := sched + ((start+k)%count)*n
		w := s.warps[idx]
		if s.issuable(w) {
			return w
		}
	}
	return nil
}

// issuable reports whether a warp could issue this cycle (ignoring
// gate outcomes, which are only known at issue time).
func (s *SMX) issuable(w *Warp) bool {
	return w.phase != phaseDone && w.phase != phaseParked && w.readyCycle <= s.cycle
}

// issueOne attempts to issue one instruction from w. Returns false if
// the warp could not issue (gate stall, memory stall, done, parked).
func (s *SMX) issueOne(w *Warp) bool {
	for {
		if w.phase == phaseDone || w.phase == phaseParked || w.readyCycle > s.cycle {
			return false
		}
		switch w.phase {
		case phaseResolve:
			s.resolve(w)
		case phaseEnter:
			if !s.enterBlock(w) {
				return false
			}
		case phaseExec:
			return s.issueInstruction(w)
		}
	}
}

// enterBlock runs the gate and semantics for the warp's current block.
// Returns false on a gate stall or exit.
func (s *SMX) enterBlock(w *Warp) bool {
	b := &s.blocks[w.block]
	if b.Gated && s.hooks.Gate != nil {
		switch s.hooks.Gate(s, w.id, s.cycle) {
		case GateStall:
			s.stats.CtrlStalls++
			// Push the warp's next attempt to the following cycle so a
			// greedy scheduler does not spin on it within this cycle.
			w.readyCycle = s.cycle + 1
			return false
		case GateExit:
			s.retireWarp(w)
			return false
		}
		// The gate may have remapped the warp (SetMapping resets phase
		// to enter); re-read the block.
		b = &s.blocks[w.block]
	}
	mask := w.ActiveMask()
	if mask == 0 {
		s.retireWarp(w)
		return false
	}
	w.activeMask = mask
	for l := 0; l < s.cfg.WarpSize; l++ {
		if mask&(1<<uint(l)) == 0 {
			continue
		}
		slot := w.slots[l]
		if slot < 0 {
			// Lane is in the mask but has no context: treat as exited.
			w.res[l] = StepResult{Next: BlockExit}
			continue
		}
		w.res[l].NMem = 0
		s.kernel.Step(slot, w.block, &w.res[l])
	}
	if s.voter != nil {
		// Reuse the warp's vote scratch: this runs at every block entry,
		// and a fresh pair of slices per entry is pure GC pressure.
		slots := w.voteSlots[:0]
		results := w.voteRes[:0]
		for l := 0; l < s.cfg.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				slots = append(slots, w.slots[l])
				results = append(results, &w.res[l])
			}
		}
		w.voteSlots = slots
		w.voteRes = results
		s.voter.Vote(w.id, w.block, slots, results)
	}
	w.insRemaining = b.Insts
	w.memRemaining = b.MemInsts
	w.memIdx = 0
	w.phase = phaseExec
	return true
}

// issueInstruction issues one instruction of the current block.
func (s *SMX) issueInstruction(w *Warp) bool {
	b := &s.blocks[w.block]
	active := bits.OnesCount32(w.activeMask)
	srcOps := b.SrcOps
	if srcOps <= 0 {
		srcOps = s.defaultSrcOps
	}
	s.stats.WarpInstrs++
	s.stats.ActiveThreadSum += int64(active)
	if active >= 0 && active < len(s.stats.ActiveHist) {
		s.stats.ActiveHist[active]++
	}
	switch b.Tag {
	case TagSI:
		s.stats.SIInstrs++
		s.stats.SIActiveSum += int64(active)
	case TagCtrl:
		s.stats.CtrlInstrs++
	}
	// Register file operand collection; conflicts stall the next issue.
	conflicts := s.rf.CollectOperands(s.cycle, w.id, w.block*4, srcOps)
	if conflicts > 0 {
		w.AddStall(s.cycle, conflicts)
	}

	// Memory instructions issue first so their latency overlaps the
	// block's ALU instructions (compilers hoist loads; the scoreboard
	// stalls only at the use).
	if w.memRemaining > 0 {
		s.issueMem(w)
		w.memRemaining--
	} else if w.insRemaining > 0 {
		w.insRemaining--
	}
	if w.insRemaining == 0 && w.memRemaining == 0 {
		w.phase = phaseResolve
		// Block completion consumes the loaded data: expose whatever
		// latency the ALU work did not cover.
		if w.memReady > w.readyCycle {
			w.readyCycle = w.memReady
		}
		w.memReady = 0
	}
	return true
}

// issueMem performs the coalesced memory access for memory instruction
// slot w.memIdx of the current block.
func (s *SMX) issueMem(w *Warp) {
	idx := w.memIdx
	w.memIdx++
	var addrs [32]uint64
	n := 0
	var space memsys.Space
	var maxBytes uint32
	for l := 0; l < s.cfg.WarpSize; l++ {
		if w.activeMask&(1<<uint(l)) == 0 {
			continue
		}
		r := &w.res[l]
		if idx >= r.NMem {
			continue
		}
		m := r.Mem[idx]
		addrs[n] = m.Addr
		n++
		space = m.Space
		if m.Bytes > maxBytes {
			maxBytes = m.Bytes
		}
	}
	s.stats.MemInstrs++
	if n == 0 {
		return
	}
	res := s.mem.WarpAccessEx(space, addrs[:n], maxBytes)
	s.stats.MemTransactions += int64(res.Transactions)
	if ready := s.cycle + int64(res.Latency); ready > w.memReady {
		w.memReady = ready
	}
	if res.PendingCount > 0 {
		w.pending = append(w.pending, memPending{
			first:     res.PendingFirst,
			count:     res.PendingCount,
			missReady: s.cycle + int64(res.MissLatency),
		})
	}
}

// resolve applies the divergence outcome of the finished block.
func (s *SMX) resolve(w *Warp) {
	mask := w.activeMask
	// Retire exiting lanes first.
	var exitMask uint32
	for l := 0; l < s.cfg.WarpSize; l++ {
		if mask&(1<<uint(l)) != 0 && w.res[l].Next == BlockExit {
			exitMask |= 1 << uint(l)
		}
	}
	if exitMask != 0 {
		s.stats.Retired += int64(w.retireLanes(exitMask))
		mask &^= exitMask
	}
	if len(w.stack) == 0 {
		s.retireWarp(w)
		return
	}
	if mask == 0 {
		// All of this block's lanes exited; resume whatever remains on
		// the stack.
		w.popReconverged()
		if len(w.stack) == 0 {
			s.retireWarp(w)
			return
		}
		w.block = w.stack[len(w.stack)-1].pc
		w.phase = phaseEnter
		return
	}
	// Gather distinct targets among surviving lanes into the warp's
	// reusable scratch: uniq holds each target once (first-seen order),
	// masks the lanes headed there. This runs once per completed block
	// per warp, so it must not allocate; the distinct-target count is
	// bounded by the warp size, making the linear dup-scan cheap.
	lanes := w.laneBuf[:0]
	targets := w.targetBuf[:0]
	uniq := w.uniqBuf[:0]
	masks := w.maskBuf[:0]
	for l := 0; l < s.cfg.WarpSize; l++ {
		if mask&(1<<uint(l)) == 0 {
			continue
		}
		t := w.res[l].Next
		found := -1
		for i, u := range uniq {
			if u == t {
				found = i
				break
			}
		}
		if found < 0 {
			uniq = append(uniq, t)
			masks = append(masks, 1<<uint(l))
		} else {
			masks[found] |= 1 << uint(l)
		}
		lanes = append(lanes, l)
		targets = append(targets, t)
	}
	w.laneBuf = lanes
	w.targetBuf = targets
	w.uniqBuf = uniq
	w.maskBuf = masks

	if s.hooks.OnBlockEnd != nil {
		if s.hooks.OnBlockEnd(s, w.id, w.block, lanes, targets) {
			s.recountLive()
			return
		}
	}
	if len(uniq) > 1 && s.hooks.OnDiverge != nil {
		if s.hooks.OnDiverge(s, w.id, w.block, lanes, targets) {
			s.recountLive()
			return
		}
	}

	top := &w.stack[len(w.stack)-1]
	if len(uniq) == 1 {
		top.pc = uniq[0]
		w.popReconverged()
		if len(w.stack) == 0 {
			s.retireWarp(w)
			return
		}
		w.block = w.stack[len(w.stack)-1].pc
		w.phase = phaseEnter
		return
	}

	// Divergence: park the parent at the reconvergence block and push
	// one entry per non-reconverging target. Deterministic push order:
	// descending block id so loops (backward targets) run first.
	// Insertion sort over the (target, mask) pairs: the set is tiny and
	// sort.Sort's interface boxing would allocate on this path.
	reconv := s.blocks[w.block].Reconv
	top.pc = reconv
	for i := 1; i < len(uniq); i++ {
		t, m := uniq[i], masks[i]
		j := i - 1
		for j >= 0 && uniq[j] < t {
			uniq[j+1], masks[j+1] = uniq[j], masks[j]
			j--
		}
		uniq[j+1], masks[j+1] = t, m
	}
	for i, t := range uniq {
		if t == reconv {
			continue // those lanes wait at the reconvergence point
		}
		w.stack = append(w.stack, stackEntry{reconv: reconv, pc: t, mask: masks[i]})
	}
	if len(w.stack) > 4*s.cfg.WarpSize {
		panic(fmt.Sprintf("simt: runaway reconvergence stack (depth %d) at block %s",
			len(w.stack), s.blocks[w.block].Name))
	}
	w.popReconverged()
	w.block = w.stack[len(w.stack)-1].pc
	w.phase = phaseEnter
}

// retireWarp marks a warp done and fires the hook.
func (s *SMX) retireWarp(w *Warp) {
	if w.phase == phaseDone {
		return
	}
	w.phase = phaseDone
	w.stack = w.stack[:0]
	s.liveWarp--
	if s.hooks.OnWarpDone != nil {
		s.hooks.OnWarpDone(s, w.id)
	}
}

// RecountLive recomputes the live-warp counter after hooks have
// launched or resumed warps.
func (s *SMX) RecountLive() { s.recountLive() }

// LiveWarps returns the number of warps that are not done (running or
// parked).
func (s *SMX) LiveWarps() int { return s.liveWarp }

// InjectInstrs records `count` extra warp instructions with `active`
// active threads each, tagged `tag`, and charges the warp the issue
// time plus `extraStall` cycles. Architecture hooks use this for
// instruction overheads the kernel's block table does not contain
// (DMK's micro-kernel spawn data dumping/loading).
//drslint:hotpath
func (s *SMX) InjectInstrs(warp *Warp, count, active int, tag Tag, extraStall int) {
	if count <= 0 {
		return
	}
	s.stats.WarpInstrs += int64(count)
	s.stats.ActiveThreadSum += int64(count * active)
	if active >= 0 && active < len(s.stats.ActiveHist) {
		s.stats.ActiveHist[active] += int64(count)
	}
	if tag == TagSI {
		s.stats.SIInstrs += int64(count)
		s.stats.SIActiveSum += int64(count * active)
	}
	issueCycles := (count + s.cfg.DispatchPerScheduler - 1) / s.cfg.DispatchPerScheduler
	warp.AddStall(s.cycle, issueCycles+extraStall)
}

// AddBarrierStall records warp-cycles spent parked at a compaction
// barrier (TBC).
//drslint:hotpath
func (s *SMX) AddBarrierStall(cycles int64) {
	if cycles > 0 {
		s.stats.BarrierStallCycles += cycles
	}
}

// AddSpawnConflict records cycles lost to spawn-memory contention
// (DMK).
//drslint:hotpath
func (s *SMX) AddSpawnConflict(cycles int64) {
	if cycles > 0 {
		s.stats.SpawnConflictCycles += cycles
	}
}
