//drslint:hotpath
package simt

import (
	"fmt"
	"math/bits"

	"repro/internal/memsys"
	"repro/internal/metrics"
	"repro/internal/regfile"
)

// SMX is one streaming multiprocessor: a set of resident warps driven
// by greedy-then-oldest schedulers, a banked register file, and private
// L1 caches over the shared L2. An SMX is single-goroutine; the GPU
// runs one goroutine per SMX.
//
// Warp state lives in a struct-of-arrays store (warpstate.go): the
// per-cycle scheduler scan, the issue loop and the divergence resolver
// walk flat arrays indexed by warp id instead of dereferencing per-warp
// heap objects. The interface-dispatched calls of the issue path
// (Kernel.Step, WarpVoter.Vote, the architecture hooks, the scheduler
// policy) are resolved once at NewSMX into direct func fields.
type SMX struct {
	ID     int
	cfg    Config
	kernel Kernel
	hooks  Hooks

	st    *warpState
	views []Warp
	mem   *memsys.SMXMem
	rf    *regfile.File
	blocks []BlockInfo

	cycle int64
	stats Stats

	// greedy scheduler state: last warp issued per scheduler
	lastWarp []int
	// Idle cache: before cycle schedWake[sched] (valid while
	// schedWakeGen[sched] matches the store's wakeGen) the scheduler's
	// pick scan would find nothing issuable, so pickWarp returns -1
	// without rescanning. Stalls only push wake-ups later and parks only
	// remove candidates; the one event that wakes a warp early — a
	// launch/resume resetting readyCycle — bumps wakeGen.
	schedWake    []int64
	schedWakeGen []uint64

	// Issue path devirtualized at NewSMX: the kernel's Step method
	// value, the optional voter, the architecture hooks, and the
	// scheduler policy are bound once so the per-instruction loop makes
	// direct calls instead of interface dispatches.
	stepFn       func(slot int32, block int, res *StepResult)
	voteFn       func(warp, block int, slots []int32, res []*StepResult)
	gateFn       func(s *SMX, warp int, now int64) GateResult
	tickFn       func(s *SMX, now int64)
	onDivergeFn  func(s *SMX, warp, block int, lanes []int, targets []int) bool
	onBlockEndFn func(s *SMX, warp, block int, lanes []int, targets []int) bool
	onWarpDoneFn func(s *SMX, warp int)
	pickFn       func(sched int) int
	onIssueFn    func(w int)
	nsched       int
	wsz          int

	// Resolve/vote scratch, reused every cycle (the SMX is single-
	// goroutine and only one warp resolves at a time). Pre-sized to the
	// warp width at NewSMX so the steady-state cycle loop never grows
	// them.
	laneBuf   []int
	targetBuf []int
	uniqBuf   []int
	maskBuf   []uint32
	voteSlots []int32
	voteRes   []*StepResult
	launchBuf []int32

	defaultSrcOps int
}

// NewSMX builds one SMX running kernel with the given hooks, attached
// to the shared L2 (the locked free-running memsys.L2 or the ordered
// memsys.OrderedL2, whose per-SMX port is selected by id).
func NewSMX(id int, cfg Config, kernel Kernel, hooks Hooks, l2 memsys.SharedL2) (*SMX, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if kernel == nil {
		return nil, fmt.Errorf("simt: nil kernel")
	}
	blocks := kernel.Blocks()
	if len(blocks) == 0 {
		return nil, fmt.Errorf("simt: kernel has no blocks")
	}
	for i, b := range blocks {
		if b.Insts <= 0 && b.MemInsts <= 0 {
			return nil, fmt.Errorf("simt: block %d (%s) has no instructions", i, b.Name)
		}
	}
	ws := cfg.WarpSize
	s := &SMX{
		ID:            id,
		cfg:           cfg,
		kernel:        kernel,
		hooks:         hooks,
		blocks:        blocks,
		st:            newWarpState(cfg.MaxWarpsPerSMX, ws),
		mem:           memsys.NewSMXMemShared(cfg.Mem, id, l2),
		rf:            regfile.New(cfg.RF),
		lastWarp:      make([]int, cfg.SchedulersPerSMX),
		schedWake:     make([]int64, cfg.SchedulersPerSMX),
		schedWakeGen:  make([]uint64, cfg.SchedulersPerSMX),
		launchBuf:     make([]int32, ws),
		stepFn:        kernel.Step,
		gateFn:        hooks.Gate,
		tickFn:        hooks.Tick,
		onDivergeFn:   hooks.OnDiverge,
		onBlockEndFn:  hooks.OnBlockEnd,
		onWarpDoneFn:  hooks.OnWarpDone,
		nsched:        cfg.SchedulersPerSMX,
		wsz:           ws,
		laneBuf:       make([]int, 0, ws),
		targetBuf:     make([]int, 0, ws),
		uniqBuf:       make([]int, 0, ws),
		maskBuf:       make([]uint32, 0, ws),
		voteSlots:     make([]int32, 0, ws),
		voteRes:       make([]*StepResult, 0, ws),
		defaultSrcOps: 2,
	}
	if v, ok := kernel.(WarpVoter); ok {
		s.voteFn = v.Vote
	}
	s.views = make([]Warp, cfg.MaxWarpsPerSMX)
	for i := range s.views {
		s.views[i] = Warp{st: s.st, id: i}
	}
	for i := range s.lastWarp {
		s.lastWarp[i] = -1
	}
	// Bind the warp-scheduler policy: a configured factory wins, else
	// the enum selects one of the builtin scans. Either way the cycle
	// loop sees one direct func field — no interface dispatch, no
	// per-pick branching on the policy kind.
	switch {
	case cfg.SchedFactory != nil:
		prog := cfg.SchedFactory(SchedView{s: s})
		if prog.Pick == nil {
			return nil, fmt.Errorf("simt: scheduler factory returned a nil Pick func")
		}
		s.pickFn = prog.Pick
		s.onIssueFn = prog.OnIssue
	case cfg.Scheduler == SchedRR:
		s.pickFn = s.pickRR
	default:
		s.pickFn = s.pickGTO
	}
	return s, nil
}

// LaunchAll starts every warp at the kernel entry with the identity
// mapping slotBase + warp*warpSize + lane.
func (s *SMX) LaunchAll(slotBase int32) {
	slots := s.launchBuf
	entry := s.kernel.Entry()
	for w := 0; w < s.st.n; w++ {
		for l := range slots {
			slots[l] = slotBase + int32(w*s.wsz+l)
		}
		s.st.launch(w, entry, slots)
	}
}

// LaunchMapped starts warp w at the entry block with an explicit
// mapping (used by the DRS wiring, where warps map to rows). The live
// counter is maintained incrementally by the phase transition — this
// remap costs O(warpSize), with no O(warps) recount.
//drslint:hotpath
func (s *SMX) LaunchMapped(warp int, slots []int32) {
	s.st.launch(warp, s.kernel.Entry(), slots)
}

// Warp returns warp i (architecture hooks use this to re-form warps).
func (s *SMX) Warp(i int) *Warp { return &s.views[i] }

// NumWarps returns the number of resident warps.
func (s *SMX) NumWarps() int { return s.st.n }

// Cycle returns the current cycle.
func (s *SMX) Cycle() int64 { return s.cycle }

// Mem returns the SMX's memory hierarchy view.
func (s *SMX) Mem() *memsys.SMXMem { return s.mem }

// RF returns the SMX's register file model.
func (s *SMX) RF() *regfile.File { return s.rf }

// Stats returns a snapshot of the SMX's counters.
func (s *SMX) Stats() Stats {
	st := s.stats
	st.Cycles = s.cycle
	return st
}

// Config returns the SMX's configuration.
func (s *SMX) Config() Config { return s.cfg }

// MetricsPrefix returns the SMX's path prefix in the unified registry
// ("smx3"). Architecture wrappers append their own segment
// ("smx3/drs").
func (s *SMX) MetricsPrefix() string { return fmt.Sprintf("smx%d", s.ID) }

// RegisterMetrics registers every counter the SMX owns into the
// unified registry under smx<N>/...: the engine's issue/divergence
// counters (smx<N>/warp_instrs, ...), the live cycle and warp gauges,
// the private caches (smx<N>/l1d/..., smx<N>/l1t/...) and the register
// file (smx<N>/rf/...). Probes read the live fields; nothing on the
// per-cycle path changes.
func (s *SMX) RegisterMetrics(reg *metrics.Registry) {
	p := s.MetricsPrefix()
	reg.Counter(p+"/cycles", &s.cycle)
	reg.Gauge(p+"/live_warps", func() int64 { return int64(s.st.live) })
	reg.RegisterStruct(p, &s.stats)
	s.mem.RegisterMetrics(reg, p)
	s.rf.RegisterMetrics(reg, p+"/rf")
}

// RegisterSeries registers the SMX's per-epoch time-series columns:
// occupancy (live warps), cumulative issued warp instructions, and the
// cumulative warp-state census counters the trace exporter turns into
// exec/mem/gate/parked phase slices. The engine samples the columns at
// every epoch barrier, when no SMX goroutine is running.
func (s *SMX) RegisterSeries(se *metrics.Series) {
	p := s.MetricsPrefix()
	se.Column(p+"/live_warps", func() int64 { return int64(s.st.live) })
	se.Column(p+"/warp_instrs", func() int64 { return s.stats.WarpInstrs })
	se.Column(p+"/sampled_exec", func() int64 { return s.stats.SampledExec })
	se.Column(p+"/sampled_mem", func() int64 { return s.stats.SampledMem })
	se.Column(p+"/sampled_gate", func() int64 { return s.stats.SampledGate })
	se.Column(p+"/sampled_parked", func() int64 { return s.stats.SampledParked })
}

// Run executes until all warps are done, returning the final stats.
func (s *SMX) Run() (Stats, error) {
	maxCycles := s.cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	for s.st.live > 0 {
		s.step()
		if s.cycle > maxCycles {
			return s.Stats(), fmt.Errorf("simt: SMX %d exceeded %d cycles (%d warps live; deadlock?)",
				s.ID, maxCycles, s.st.live)
		}
	}
	return s.Stats(), nil
}

// RunEpoch advances the SMX to device cycle `end` (or until all its
// warps are done), leaving this epoch's L2-bound requests queued on the
// SMX's port. The epoch-barrier engine calls it from the SMX's worker
// goroutine, then — after the device-wide ordered drain — ResolveEpoch
// from the barrier. The engine guarantees end-start never exceeds
// Config.EpochLen, so no queued request's data could have been needed
// before the barrier.
func (s *SMX) RunEpoch(end int64) error {
	maxCycles := s.cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	for s.st.live > 0 && s.cycle < end {
		s.step()
		if s.cycle > maxCycles {
			return fmt.Errorf("simt: SMX %d exceeded %d cycles (%d warps live; deadlock?)",
				s.ID, maxCycles, s.st.live)
		}
	}
	return nil
}

// ResolveEpoch applies the epoch drain's hit/miss outcomes to warps
// with in-flight memory and clears the SMX's port queue. The engine
// calls it at the barrier, never concurrently with RunEpoch. A warp
// whose access missed the L2 has its ready cycle raised from the
// provisional (L2-hit) estimate to the full DRAM round trip; the
// estimate always reaches past the barrier, so the correction is never
// late.
//drslint:hotpath
func (s *SMX) ResolveEpoch() {
	port := s.mem.Port()
	if port == nil || port.Pending() == 0 {
		return
	}
	st := s.st
	for w := 0; w < st.n; w++ {
		for _, p := range st.pending[w] {
			if !port.AnyMissed(p.first, p.count) {
				continue
			}
			if st.phase[w] == phaseExec {
				// Block still executing: the latency is exposed at block
				// completion via memReady.
				if p.missReady > st.memReady[w] {
					st.memReady[w] = p.missReady
				}
			} else if p.missReady > st.readyCycle[w] {
				// Block completed inside the epoch: completion moved the
				// provisional memReady into readyCycle; raise it there.
				st.readyCycle[w] = p.missReady
			}
		}
		st.pending[w] = st.pending[w][:0]
	}
	port.Reset()
}

// RunFor advances the SMX by at most n cycles, stopping early if all
// warps finish. Useful for interactive inspection and incremental
// drivers.
func (s *SMX) RunFor(n int64) error {
	maxCycles := s.cfg.MaxCycles
	if maxCycles <= 0 {
		maxCycles = 1 << 40
	}
	for end := s.cycle + n; s.st.live > 0 && s.cycle < end; {
		s.step()
		if s.cycle > maxCycles {
			return fmt.Errorf("simt: SMX %d exceeded %d cycles (%d warps live; deadlock?)",
				s.ID, maxCycles, s.st.live)
		}
	}
	return nil
}

// step advances the SMX by one cycle.
//drslint:hotpath
func (s *SMX) step() {
	s.cycle++
	s.rf.Advance(s.cycle)
	if s.tickFn != nil {
		s.tickFn(s, s.cycle)
	}
	if s.cycle%64 == 0 {
		st := s.st
		for w := 0; w < st.n; w++ {
			switch {
			case st.phase[w] == phaseDone:
				s.stats.SampledDone++
			case st.phase[w] == phaseParked:
				s.stats.SampledParked++
			case st.readyCycle[w] > s.cycle+1:
				s.stats.SampledMem++
			case st.readyCycle[w] == s.cycle+1 && st.phase[w] == phaseEnter:
				s.stats.SampledGate++
			default:
				s.stats.SampledExec++
			}
		}
	}
	for sched := 0; sched < s.nsched; sched++ {
		s.stats.IssueSlotsTotal += int64(s.cfg.DispatchPerScheduler)
		// A scheduler keeps trying candidate warps until one issues:
		// every failed issue attempt (gate stall, memory stall, warp
		// retirement) leaves the warp non-issuable this cycle, so the
		// loop terminates.
		guard := 0
		for {
			w := s.pickWarp(sched)
			if w < 0 {
				break
			}
			if !s.issueOne(w) {
				guard++
				if guard > s.st.n {
					break
				}
				continue
			}
			s.stats.IssueSlotsUsed++
			s.st.lastIssued[w] = s.cycle
			s.lastWarp[sched] = w
			if s.onIssueFn != nil {
				s.onIssueFn(w)
			}
			for d := 1; d < s.cfg.DispatchPerScheduler; d++ {
				if !s.issueOne(w) {
					break
				}
				s.stats.IssueSlotsUsed++
				if s.onIssueFn != nil {
					s.onIssueFn(w)
				}
			}
			break
		}
	}
}

// pickWarp selects the next warp for a scheduler according to the
// configured policy, returning its id (-1 = none issuable). A scan that
// comes up empty records the earliest cycle any of the scheduler's
// warps could become issuable; until then (and while no launch/resume
// intervenes) subsequent picks return -1 in O(1) — on memory- and
// gate-bound phases most cycles have no issuable warp, and rescanning
// every warp per scheduler per cycle was the scheduler's dominant cost.
func (s *SMX) pickWarp(sched int) int {
	if s.schedWakeGen[sched] == s.st.wakeGen && s.cycle < s.schedWake[sched] {
		return -1
	}
	w := s.pickFn(sched)
	if w < 0 {
		s.recordWake(sched)
	}
	return w
}

// recordWake caches the scheduler's next possible wake-up after an
// empty pick scan: the minimum readyCycle over its live, unparked
// warps (none of which is issuable now, so all exceed the current
// cycle). With no live warps the cache holds until a launch bumps the
// generation.
func (s *SMX) recordWake(sched int) {
	st := s.st
	wake := int64(1) << 62
	for w := sched; w < st.n; w += s.nsched {
		if p := st.phase[w]; p == phaseDone || p == phaseParked {
			continue
		}
		if st.readyCycle[w] < wake {
			wake = st.readyCycle[w]
		}
	}
	s.schedWake[sched] = wake
	s.schedWakeGen[sched] = st.wakeGen
}

// pickGTO is greedy-then-oldest: prefer the warp this scheduler issued
// from last; otherwise the ready warp that has waited longest (oldest
// lastIssued, then lowest id). The scan reads two flat arrays (phase,
// readyCycle) — no pointer chasing.
func (s *SMX) pickGTO(sched int) int {
	if last := s.lastWarp[sched]; last >= 0 {
		if last%s.nsched == sched && s.issuable(last) {
			return last
		}
	}
	st := s.st
	best := -1
	var bestLast int64
	for w := sched; w < st.n; w += s.nsched {
		if !s.issuable(w) {
			continue
		}
		if best < 0 || st.lastIssued[w] < bestLast {
			best, bestLast = w, st.lastIssued[w]
		}
	}
	return best
}

// pickRR rotates through the scheduler's warps, starting after the one
// it issued from last.
func (s *SMX) pickRR(sched int) int {
	n := s.nsched
	count := (s.st.n - sched + n - 1) / n
	if count <= 0 {
		return -1
	}
	start := 0
	if last := s.lastWarp[sched]; last >= 0 {
		start = (last-sched)/n + 1
	}
	for k := 0; k < count; k++ {
		w := sched + ((start+k)%count)*n
		if s.issuable(w) {
			return w
		}
	}
	return -1
}

// issuable reports whether a warp could issue this cycle (ignoring
// gate outcomes, which are only known at issue time).
func (s *SMX) issuable(w int) bool {
	p := s.st.phase[w]
	return p != phaseDone && p != phaseParked && s.st.readyCycle[w] <= s.cycle
}

// issueOne attempts to issue one instruction from warp w. Returns false
// if the warp could not issue (gate stall, memory stall, done, parked).
func (s *SMX) issueOne(w int) bool {
	st := s.st
	for {
		p := st.phase[w]
		if p == phaseDone || p == phaseParked || st.readyCycle[w] > s.cycle {
			return false
		}
		switch p {
		case phaseResolve:
			s.resolve(w)
		case phaseEnter:
			if !s.enterBlock(w) {
				return false
			}
		case phaseExec:
			return s.issueInstruction(w)
		}
	}
}

// enterBlock runs the gate and semantics for the warp's current block.
// Returns false on a gate stall or exit.
func (s *SMX) enterBlock(w int) bool {
	st := s.st
	b := &s.blocks[st.block[w]]
	if b.Gated && s.gateFn != nil {
		switch s.gateFn(s, w, s.cycle) {
		case GateStall:
			s.stats.CtrlStalls++
			// Push the warp's next attempt to the following cycle so a
			// greedy scheduler does not spin on it within this cycle.
			st.readyCycle[w] = s.cycle + 1
			return false
		case GateExit:
			s.retireWarp(w)
			return false
		}
		// The gate may have remapped the warp (SetMapping resets phase
		// to enter); re-read the block.
		b = &s.blocks[st.block[w]]
	}
	mask := st.topMask(w)
	if mask == 0 {
		s.retireWarp(w)
		return false
	}
	st.activeMask[w] = mask
	base := st.laneBase(w)
	block := int(st.block[w])
	for m := mask; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		slot := st.slots[base+l]
		if slot < 0 {
			// Lane is in the mask but has no context: treat as exited.
			st.res[base+l] = StepResult{Next: BlockExit}
			continue
		}
		st.res[base+l].NMem = 0
		s.stepFn(slot, block, &st.res[base+l])
	}
	if s.voteFn != nil {
		// Reuse the SMX's vote scratch: this runs at every block entry,
		// and a fresh pair of slices per entry is pure GC pressure.
		slots := s.voteSlots[:0]
		results := s.voteRes[:0]
		for m := mask; m != 0; m &= m - 1 {
			l := bits.TrailingZeros32(m)
			slots = append(slots, st.slots[base+l])
			results = append(results, &st.res[base+l])
		}
		s.voteSlots = slots
		s.voteRes = results
		s.voteFn(w, block, slots, results)
	}
	st.insRem[w] = int32(b.Insts)
	st.memRem[w] = int32(b.MemInsts)
	st.memIdx[w] = 0
	st.setPhase(w, phaseExec)
	return true
}

// issueInstruction issues one instruction of the current block.
func (s *SMX) issueInstruction(w int) bool {
	st := s.st
	b := &s.blocks[st.block[w]]
	active := bits.OnesCount32(st.activeMask[w])
	srcOps := b.SrcOps
	if srcOps <= 0 {
		srcOps = s.defaultSrcOps
	}
	s.stats.WarpInstrs++
	s.stats.ActiveThreadSum += int64(active)
	if active >= 0 && active < len(s.stats.ActiveHist) {
		s.stats.ActiveHist[active]++
	}
	switch b.Tag {
	case TagSI:
		s.stats.SIInstrs++
		s.stats.SIActiveSum += int64(active)
	case TagCtrl:
		s.stats.CtrlInstrs++
	}
	// Register file operand collection; conflicts stall the next issue.
	conflicts := s.rf.CollectOperands(s.cycle, w, int(st.block[w])*4, srcOps)
	if conflicts > 0 {
		if target := s.cycle + int64(conflicts); target > st.readyCycle[w] {
			st.readyCycle[w] = target
		}
	}

	// Memory instructions issue first so their latency overlaps the
	// block's ALU instructions (compilers hoist loads; the scoreboard
	// stalls only at the use).
	if st.memRem[w] > 0 {
		s.issueMem(w)
		st.memRem[w]--
	} else if st.insRem[w] > 0 {
		st.insRem[w]--
	}
	if st.insRem[w] == 0 && st.memRem[w] == 0 {
		st.setPhase(w, phaseResolve)
		// Block completion consumes the loaded data: expose whatever
		// latency the ALU work did not cover.
		if st.memReady[w] > st.readyCycle[w] {
			st.readyCycle[w] = st.memReady[w]
		}
		st.memReady[w] = 0
	}
	return true
}

// issueMem performs the coalesced memory access for memory instruction
// slot memIdx of the warp's current block.
func (s *SMX) issueMem(w int) {
	st := s.st
	idx := int(st.memIdx[w])
	st.memIdx[w]++
	var addrs [32]uint64
	n := 0
	var space memsys.Space
	var maxBytes uint32
	base := st.laneBase(w)
	for m := st.activeMask[w]; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		r := &st.res[base+l]
		if idx >= r.NMem {
			continue
		}
		mm := r.Mem[idx]
		addrs[n] = mm.Addr
		n++
		space = mm.Space
		if mm.Bytes > maxBytes {
			maxBytes = mm.Bytes
		}
	}
	s.stats.MemInstrs++
	if n == 0 {
		return
	}
	res := s.mem.WarpAccessEx(space, addrs[:n], maxBytes)
	s.stats.MemTransactions += int64(res.Transactions)
	if ready := s.cycle + int64(res.Latency); ready > st.memReady[w] {
		st.memReady[w] = ready
	}
	if res.PendingCount > 0 {
		st.pending[w] = append(st.pending[w], memPending{
			first:     res.PendingFirst,
			count:     res.PendingCount,
			missReady: s.cycle + int64(res.MissLatency),
		})
	}
}

// resolve applies the divergence outcome of the finished block.
func (s *SMX) resolve(w int) {
	st := s.st
	mask := st.activeMask[w]
	base := st.laneBase(w)
	// Retire exiting lanes first.
	var exitMask uint32
	for m := mask; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		if st.res[base+l].Next == BlockExit {
			exitMask |= 1 << uint(l)
		}
	}
	if exitMask != 0 {
		s.stats.Retired += int64(st.retireLanes(w, exitMask))
		mask &^= exitMask
	}
	if st.stackLen[w] == 0 {
		s.retireWarp(w)
		return
	}
	if mask == 0 {
		// All of this block's lanes exited; resume whatever remains on
		// the stack.
		st.popReconverged(w)
		if st.stackLen[w] == 0 {
			s.retireWarp(w)
			return
		}
		st.block[w] = st.top(w).pc
		st.setPhase(w, phaseEnter)
		return
	}
	// Gather distinct targets among surviving lanes into the SMX's
	// reusable scratch: uniq holds each target once (first-seen order),
	// masks the lanes headed there. This runs once per completed block
	// per warp, so it must not allocate; the distinct-target count is
	// bounded by the warp size, making the linear dup-scan cheap.
	lanes := s.laneBuf[:0]
	targets := s.targetBuf[:0]
	uniq := s.uniqBuf[:0]
	masks := s.maskBuf[:0]
	for m := mask; m != 0; m &= m - 1 {
		l := bits.TrailingZeros32(m)
		t := st.res[base+l].Next
		found := -1
		for i, u := range uniq {
			if u == t {
				found = i
				break
			}
		}
		if found < 0 {
			uniq = append(uniq, t)
			masks = append(masks, 1<<uint(l))
		} else {
			masks[found] |= 1 << uint(l)
		}
		lanes = append(lanes, l)
		targets = append(targets, t)
	}
	s.laneBuf = lanes
	s.targetBuf = targets
	s.uniqBuf = uniq
	s.maskBuf = masks

	if s.onBlockEndFn != nil {
		if s.onBlockEndFn(s, w, int(st.block[w]), lanes, targets) {
			// The hook re-formed the warp; phase transitions maintained
			// the live counter incrementally.
			return
		}
	}
	if len(uniq) > 1 && s.onDivergeFn != nil {
		if s.onDivergeFn(s, w, int(st.block[w]), lanes, targets) {
			return
		}
	}

	top := st.top(w)
	if len(uniq) == 1 {
		top.pc = int32(uniq[0])
		st.popReconverged(w)
		if st.stackLen[w] == 0 {
			s.retireWarp(w)
			return
		}
		st.block[w] = st.top(w).pc
		st.setPhase(w, phaseEnter)
		return
	}

	// Divergence: park the parent at the reconvergence block and push
	// one entry per non-reconverging target. Deterministic push order:
	// descending block id so loops (backward targets) run first.
	// Insertion sort over the (target, mask) pairs: the set is tiny and
	// sort.Sort's interface boxing would allocate on this path.
	reconv := s.blocks[st.block[w]].Reconv
	top.pc = int32(reconv)
	for i := 1; i < len(uniq); i++ {
		t, m := uniq[i], masks[i]
		j := i - 1
		for j >= 0 && uniq[j] < t {
			uniq[j+1], masks[j+1] = uniq[j], masks[j]
			j--
		}
		uniq[j+1], masks[j+1] = t, m
	}
	for i, t := range uniq {
		if t == reconv {
			continue // those lanes wait at the reconvergence point
		}
		st.push(w, stackEntry{reconv: int32(reconv), pc: int32(t), mask: masks[i]})
	}
	if int(st.stackLen[w]) > 4*s.wsz {
		panic(fmt.Sprintf("simt: runaway reconvergence stack (depth %d) at block %s",
			st.stackLen[w], s.blocks[st.block[w]].Name))
	}
	st.popReconverged(w)
	st.block[w] = st.top(w).pc
	st.setPhase(w, phaseEnter)
}

// retireWarp marks a warp done and fires the hook.
func (s *SMX) retireWarp(w int) {
	if s.st.phase[w] == phaseDone {
		return
	}
	s.st.setPhase(w, phaseDone)
	s.st.stackLen[w] = 0
	if s.onWarpDoneFn != nil {
		s.onWarpDoneFn(s, w)
	}
}

// RecountLive recomputes the live-warp counter from scratch. The
// counter is maintained incrementally by every phase transition, so
// this is a verification aid, not a requirement after hooks launch or
// resume warps; it remains for API compatibility and asserts in tests.
func (s *SMX) RecountLive() {
	live := 0
	for _, p := range s.st.phase {
		if p != phaseDone {
			live++
		}
	}
	s.st.live = live
}

// LiveWarps returns the number of warps that are not done (running or
// parked).
func (s *SMX) LiveWarps() int { return s.st.live }

// InjectInstrs records `count` extra warp instructions with `active`
// active threads each, tagged `tag`, and charges the warp the issue
// time plus `extraStall` cycles. Architecture hooks use this for
// instruction overheads the kernel's block table does not contain
// (DMK's micro-kernel spawn data dumping/loading).
//drslint:hotpath
func (s *SMX) InjectInstrs(warp *Warp, count, active int, tag Tag, extraStall int) {
	if count <= 0 {
		return
	}
	s.stats.WarpInstrs += int64(count)
	s.stats.ActiveThreadSum += int64(count * active)
	if active >= 0 && active < len(s.stats.ActiveHist) {
		s.stats.ActiveHist[active] += int64(count)
	}
	if tag == TagSI {
		s.stats.SIInstrs += int64(count)
		s.stats.SIActiveSum += int64(count * active)
	}
	issueCycles := (count + s.cfg.DispatchPerScheduler - 1) / s.cfg.DispatchPerScheduler
	warp.AddStall(s.cycle, issueCycles+extraStall)
}

// AddBarrierStall records warp-cycles spent parked at a compaction
// barrier (TBC).
//drslint:hotpath
func (s *SMX) AddBarrierStall(cycles int64) {
	if cycles > 0 {
		s.stats.BarrierStallCycles += cycles
	}
}

// AddSpawnConflict records cycles lost to spawn-memory contention
// (DMK).
//drslint:hotpath
func (s *SMX) AddSpawnConflict(cycles int64) {
	if cycles > 0 {
		s.stats.SpawnConflictCycles += cycles
	}
}
