package simt

import (
	"math/bits"

	"repro/internal/memsys"
)

// memPending is one warp memory access awaiting the epoch drain's L2
// hit/miss outcome: requests [first, first+count) on the SMX's L2
// port, and the ready cycle to impose if any of them missed. Pending
// records live at most one epoch — the barrier that follows their issue
// resolves and clears them.
type memPending struct {
	first     memsys.ReqID
	count     int
	missReady int64
}

// warpPhase tracks where a warp is in its block execution cycle.
type warpPhase uint8

const (
	phaseEnter   warpPhase = iota // needs gate check + Step for its block
	phaseExec                     // issuing the block's instructions
	phaseResolve                  // block finished, divergence pending
	phaseParked                   // suspended by an architecture hook (TBC barrier)
	phaseDone                     // all lanes retired
)

// stackEntry is one level of the IPDOM reconvergence stack.
type stackEntry struct {
	reconv int    // block where this entry's threads reconverge
	pc     int    // next block for this entry's threads
	mask   uint32 // active lanes
}

// noReconv marks the bottom stack entry, which never pops.
const noReconv = -2

// Warp is one resident warp of an SMX.
type Warp struct {
	id    int
	phase warpPhase

	// slots maps lane -> kernel context slot (-1 = empty lane).
	slots []int32
	stack []stackEntry

	block        int
	activeMask   uint32 // mask captured at block entry
	insRemaining int
	memRemaining int
	memIdx       int

	readyCycle int64
	// memReady is when the current block's outstanding memory data
	// arrives; loads issue early and overlap with the block's ALU
	// instructions, so the warp only stalls on it at block completion.
	memReady   int64
	lastIssued int64

	// pending holds this epoch's L2-bound accesses (epoch-barrier
	// engine only); ResolveEpoch applies and clears them.
	pending []memPending

	res []StepResult // per-lane results for the current block

	// scratch reused during resolve and voting; resolve gathers the
	// distinct branch targets into uniqBuf with their lane masks in
	// maskBuf (parallel arrays — a warp has at most warpSize distinct
	// targets, so a linear scan beats a map and allocates nothing).
	laneBuf   []int
	targetBuf []int
	uniqBuf   []int
	maskBuf   []uint32
	voteSlots []int32
	voteRes   []*StepResult
}

func newWarp(id, warpSize int) *Warp {
	return &Warp{
		id:    id,
		slots: make([]int32, warpSize),
		res:   make([]StepResult, warpSize),
		phase: phaseDone,
	}
}

// Launch activates the warp at the given entry block with the lane ->
// slot mapping. Lanes with slot -1 are masked off.
//drslint:hotpath
func (w *Warp) Launch(entry int, slots []int32) {
	copy(w.slots, slots)
	var mask uint32
	for l, s := range w.slots {
		if s >= 0 {
			mask |= 1 << uint(l)
		}
	}
	w.stack = w.stack[:0]
	if mask != 0 {
		w.stack = append(w.stack, stackEntry{reconv: noReconv, pc: entry, mask: mask})
		w.phase = phaseEnter
	} else {
		w.phase = phaseDone
	}
	w.block = entry
	w.readyCycle = 0
	// Remaps only happen to warps with no in-flight memory (a warp with
	// unresolved L2 requests cannot reach a gate or divergence point
	// before the barrier that resolves them), so this is hygiene.
	w.pending = w.pending[:0]
}

// ID returns the warp's index within its SMX.
func (w *Warp) ID() int { return w.id }

// Done reports whether all the warp's lanes have retired.
func (w *Warp) Done() bool { return w.phase == phaseDone }

// Parked reports whether the warp is suspended at a barrier.
func (w *Warp) Parked() bool { return w.phase == phaseParked }

// Block returns the warp's current block.
func (w *Warp) Block() int { return w.block }

// Slots returns the warp's lane -> slot mapping. The returned slice is
// the warp's own; callers must not retain it across engine steps.
func (w *Warp) Slots() []int32 { return w.slots }

// ActiveMask returns the mask of the top reconvergence stack entry, or
// 0 if the warp is done.
func (w *Warp) ActiveMask() uint32 {
	if len(w.stack) == 0 {
		return 0
	}
	return w.stack[len(w.stack)-1].mask
}

// StackDepth returns the current reconvergence stack depth.
func (w *Warp) StackDepth() int { return len(w.stack) }

// AddStall delays the warp's next issue by the given number of cycles
// beyond `now` (architecture hooks use this for spawn-memory conflicts
// and shuffle costs).
//drslint:hotpath
func (w *Warp) AddStall(now int64, cycles int) {
	target := now + int64(cycles)
	if target > w.readyCycle {
		w.readyCycle = target
	}
}

// SetMapping replaces the warp's lane -> slot mapping and resets its
// reconvergence stack to a single full entry at block `pc`. Lanes with
// slot -1 are masked off. Architecture hooks (DRS renaming, DMK
// respawn, TBC compaction) use this to re-form the warp.
//drslint:hotpath
func (w *Warp) SetMapping(slots []int32, pc int) {
	w.Launch(pc, slots)
}

// Park suspends the warp (TBC barrier). Resume with SetMapping.
//drslint:hotpath
func (w *Warp) Park() { w.phase = phaseParked }

// Resume reactivates a parked (or retired) warp at block pc with a
// fresh mapping. Retired warps may be resurrected because compaction
// architectures hand pending thread contexts to whichever warps are
// free.
//drslint:hotpath
func (w *Warp) Resume(slots []int32, pc int) {
	if w.phase != phaseParked && w.phase != phaseDone {
		panic("simt: Resume on a warp that is still running")
	}
	w.Launch(pc, slots)
}

// retireLanes removes the given lanes from every stack entry, dropping
// entries that become empty. Returns the number of lanes retired.
func (w *Warp) retireLanes(mask uint32) int {
	if mask == 0 {
		return 0
	}
	n := bits.OnesCount32(mask)
	out := w.stack[:0]
	for _, e := range w.stack {
		e.mask &^= mask
		if e.mask != 0 {
			out = append(out, e)
		}
	}
	w.stack = out
	for l := range w.slots {
		if mask&(1<<uint(l)) != 0 {
			w.slots[l] = -1
		}
	}
	return n
}

// popReconverged pops stack entries whose pc reached their
// reconvergence block.
func (w *Warp) popReconverged() {
	for len(w.stack) > 0 {
		top := w.stack[len(w.stack)-1]
		if top.reconv == noReconv || top.pc != top.reconv {
			return
		}
		w.stack = w.stack[:len(w.stack)-1]
	}
}
