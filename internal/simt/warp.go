package simt

// Warp is one resident warp of an SMX. Since the SoA refactor it is a
// thin view — an id plus a pointer to the SMX's struct-of-arrays store
// (warpstate.go) — so the accessor API the architecture hooks use
// (Slots, SetMapping, Park, Resume, ...) is unchanged while the engine
// itself scans flat arrays. Views are created once at NewSMX and are
// stable for the SMX's lifetime.
type Warp struct {
	st *warpState
	id int
}

// newWarp builds a standalone warp backed by its own single-view store
// (tests exercise the warp-level operations without an SMX).
func newWarp(id, warpSize int) *Warp {
	return &Warp{st: newWarpState(id+1, warpSize), id: id}
}

// Launch activates the warp at the given entry block with the lane ->
// slot mapping. Lanes with slot -1 are masked off.
//drslint:hotpath
func (w *Warp) Launch(entry int, slots []int32) {
	w.st.launch(w.id, entry, slots)
}

// ID returns the warp's index within its SMX.
func (w *Warp) ID() int { return w.id }

// Done reports whether all the warp's lanes have retired.
func (w *Warp) Done() bool { return w.st.phase[w.id] == phaseDone }

// Parked reports whether the warp is suspended at a barrier.
func (w *Warp) Parked() bool { return w.st.phase[w.id] == phaseParked }

// Block returns the warp's current block.
func (w *Warp) Block() int { return int(w.st.block[w.id]) }

// Slots returns the warp's lane -> slot mapping. The returned slice
// aliases the SMX's store; callers must not retain it across engine
// steps.
func (w *Warp) Slots() []int32 { return w.st.laneSlots(w.id) }

// ActiveMask returns the mask of the top reconvergence stack entry, or
// 0 if the warp is done.
func (w *Warp) ActiveMask() uint32 { return w.st.topMask(w.id) }

// StackDepth returns the current reconvergence stack depth.
func (w *Warp) StackDepth() int { return int(w.st.stackLen[w.id]) }

// AddStall delays the warp's next issue by the given number of cycles
// beyond `now` (architecture hooks use this for spawn-memory conflicts
// and shuffle costs).
//drslint:hotpath
func (w *Warp) AddStall(now int64, cycles int) {
	target := now + int64(cycles)
	if target > w.st.readyCycle[w.id] {
		w.st.readyCycle[w.id] = target
	}
}

// SetMapping replaces the warp's lane -> slot mapping and resets its
// reconvergence stack to a single full entry at block `pc`. Lanes with
// slot -1 are masked off. Architecture hooks (DRS renaming, DMK
// respawn, TBC compaction) use this to re-form the warp.
//drslint:hotpath
func (w *Warp) SetMapping(slots []int32, pc int) {
	w.st.launch(w.id, pc, slots)
}

// Park suspends the warp (TBC barrier). Resume with SetMapping.
//drslint:hotpath
func (w *Warp) Park() { w.st.setPhase(w.id, phaseParked) }

// Resume reactivates a parked (or retired) warp at block pc with a
// fresh mapping. Retired warps may be resurrected because compaction
// architectures hand pending thread contexts to whichever warps are
// free.
//drslint:hotpath
func (w *Warp) Resume(slots []int32, pc int) {
	if p := w.st.phase[w.id]; p != phaseParked && p != phaseDone {
		panic("simt: Resume on a warp that is still running")
	}
	w.st.launch(w.id, pc, slots)
}

// retireLanes removes the given lanes from every stack entry, dropping
// entries that become empty. Returns the number of lanes retired.
func (w *Warp) retireLanes(mask uint32) int {
	return w.st.retireLanes(w.id, mask)
}

// popReconverged pops stack entries whose pc reached their
// reconvergence block.
func (w *Warp) popReconverged() { w.st.popReconverged(w.id) }
