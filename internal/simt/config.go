package simt

import (
	"fmt"

	"repro/internal/memsys"
	"repro/internal/regfile"
)

// SchedPolicy selects the warp scheduling policy.
type SchedPolicy uint8

// Warp scheduling policies.
const (
	// SchedGTO is greedy-then-oldest (Table 1's configuration): keep
	// issuing the same warp; fall back to the warp that has waited
	// longest.
	SchedGTO SchedPolicy = iota
	// SchedRR is loose round-robin: rotate through ready warps
	// (ablation baseline).
	SchedRR
)

func (p SchedPolicy) String() string {
	switch p {
	case SchedGTO:
		return "gto"
	case SchedRR:
		return "rr"
	default:
		return "unknown"
	}
}

// Config holds the GPU microarchitectural parameters (Table 1 of the
// paper: a GeForce GTX780, Kepler architecture).
type Config struct {
	WarpSize             int // SIMD lanes per warp
	NumSMX               int // SMXs per GPU
	SchedulersPerSMX     int // warp schedulers per SMX
	DispatchPerScheduler int // instruction dispatch units per scheduler
	MaxWarpsPerSMX       int // resident warps (kernel-dependent)
	ClockMHz             int // SMX clock
	Scheduler            SchedPolicy

	Mem memsys.Config
	RF  regfile.Config

	// MaxCycles aborts a run that fails to terminate (engine bug
	// guard). Zero means the default of 2^40.
	MaxCycles int64
}

// DefaultConfig returns the paper's Table 1 configuration: 980 MHz,
// 32 lanes, 15 SMXs, 4 schedulers with 8 dispatch units per SMX,
// 65536 registers per SMX, 48 KB L1 data, 48 KB L1 texture, 1536 KB L2.
func DefaultConfig() Config {
	return Config{
		WarpSize:             32,
		NumSMX:               15,
		SchedulersPerSMX:     4,
		DispatchPerScheduler: 2,
		MaxWarpsPerSMX:       48,
		ClockMHz:             980,
		Mem:                  memsys.DefaultConfig(),
		RF:                   regfile.DefaultConfig(),
	}
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	switch {
	case c.WarpSize <= 0 || c.WarpSize > 32:
		return fmt.Errorf("simt: warp size %d out of range [1,32]", c.WarpSize)
	case c.NumSMX <= 0:
		return fmt.Errorf("simt: need at least one SMX")
	case c.SchedulersPerSMX <= 0:
		return fmt.Errorf("simt: need at least one scheduler")
	case c.DispatchPerScheduler <= 0:
		return fmt.Errorf("simt: need at least one dispatch unit")
	case c.MaxWarpsPerSMX <= 0:
		return fmt.Errorf("simt: need at least one resident warp")
	case c.ClockMHz <= 0:
		return fmt.Errorf("simt: clock must be positive")
	}
	return nil
}
