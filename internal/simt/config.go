package simt

import (
	"fmt"

	"repro/internal/memsys"
	"repro/internal/metrics"
	"repro/internal/regfile"
)

// SchedPolicy selects the warp scheduling policy.
type SchedPolicy uint8

// Warp scheduling policies.
const (
	// SchedGTO is greedy-then-oldest (Table 1's configuration): keep
	// issuing the same warp; fall back to the warp that has waited
	// longest.
	SchedGTO SchedPolicy = iota
	// SchedRR is loose round-robin: rotate through ready warps
	// (ablation baseline).
	SchedRR
)

func (p SchedPolicy) String() string {
	switch p {
	case SchedGTO:
		return "gto"
	case SchedRR:
		return "rr"
	default:
		return "unknown"
	}
}

// Engine selects the multi-SMX execution engine.
type Engine uint8

// Multi-SMX execution engines.
const (
	// EngineEpoch is the deterministic epoch-barrier engine (the
	// default): SMXs execute concurrently in bounded cycle windows
	// (epochs); L2-bound requests queue on per-SMX ports and drain into
	// the shared L2 in fixed (smxID, issue-order) round-robin at each
	// barrier, so cache state transitions — and therefore device cycle
	// counts — are independent of goroutine scheduling.
	EngineEpoch Engine = iota
	// EngineFree is the legacy free-running engine: one unsynchronized
	// goroutine per SMX over a mutex-locked L2. Slightly less barrier
	// overhead, but L2 LRU/eviction state mutates in goroutine-
	// scheduling order and cycle counts jitter ~2% run to run. Kept for
	// A/B performance comparison.
	EngineFree
)

func (e Engine) String() string {
	switch e {
	case EngineEpoch:
		return "epoch"
	case EngineFree:
		return "free"
	default:
		return "unknown"
	}
}

// DefaultEpochCycles is the default epoch length of the epoch-barrier
// engine. Shorter epochs mean more barriers (slower); the epoch length
// bounds how far one SMX's view of the L2 can lag the canonical drain
// order, and it is clamped so no queued request could ever have
// completed before the barrier that resolves it (see Config.EpochLen).
const DefaultEpochCycles = 64

// Config holds the GPU microarchitectural parameters (Table 1 of the
// paper: a GeForce GTX780, Kepler architecture).
type Config struct {
	WarpSize             int // SIMD lanes per warp
	NumSMX               int // SMXs per GPU
	SchedulersPerSMX     int // warp schedulers per SMX
	DispatchPerScheduler int // instruction dispatch units per scheduler
	MaxWarpsPerSMX       int // resident warps (kernel-dependent)
	ClockMHz             int // SMX clock
	Scheduler            SchedPolicy

	// SchedFactory, when non-nil, supplies the warp-scheduler policy
	// instead of the Scheduler enum: NewSMX calls it once per SMX and
	// binds the returned SchedProgram's funcs directly into the issue
	// path (see sched.go). The builtin enum policies remain available
	// through SchedView.PickGTO/PickLRR, and a nil factory keeps the
	// historical enum behavior bit-for-bit.
	SchedFactory SchedFactory

	Mem memsys.Config
	RF  regfile.Config

	// Engine selects the multi-SMX execution engine. The zero value is
	// EngineEpoch, the deterministic one.
	Engine Engine
	// EpochCycles is the epoch length (in device cycles) of the
	// epoch-barrier engine; zero means DefaultEpochCycles. The
	// effective length is clamped to the minimum L2-bound latency (see
	// EpochLen), which keeps the deferred hit/miss resolution exact.
	EpochCycles int

	// MaxCycles aborts a run that fails to terminate (engine bug
	// guard). Zero means the default of 2^40.
	MaxCycles int64

	// Collector, when non-nil, attaches the unified observability layer
	// to the run: RunGPU registers every component's counters into
	// Collector.Registry under hierarchical smx<N>/... paths, and the
	// epoch-barrier engine samples Collector.Series at every barrier
	// (active warps, issued instructions, L2 queue depths — see
	// SMX.RegisterSeries). The free-running engine fills only the
	// registry; it has no deterministic sampling points for a series.
	Collector *metrics.Collector
}

// DefaultConfig returns the paper's Table 1 configuration: 980 MHz,
// 32 lanes, 15 SMXs, 4 schedulers with 8 dispatch units per SMX,
// 65536 registers per SMX, 48 KB L1 data, 48 KB L1 texture, 1536 KB L2.
func DefaultConfig() Config {
	return Config{
		WarpSize:             32,
		NumSMX:               15,
		SchedulersPerSMX:     4,
		DispatchPerScheduler: 2,
		MaxWarpsPerSMX:       48,
		ClockMHz:             980,
		Mem:                  memsys.DefaultConfig(),
		RF:                   regfile.DefaultConfig(),
	}
}

// Validate reports the first invalid parameter.
func (c Config) Validate() error {
	switch {
	case c.WarpSize <= 0 || c.WarpSize > 32:
		return fmt.Errorf("simt: warp size %d out of range [1,32]", c.WarpSize)
	case c.NumSMX <= 0:
		return fmt.Errorf("simt: need at least one SMX")
	case c.SchedulersPerSMX <= 0:
		return fmt.Errorf("simt: need at least one scheduler")
	case c.DispatchPerScheduler <= 0:
		return fmt.Errorf("simt: need at least one dispatch unit")
	case c.MaxWarpsPerSMX <= 0:
		return fmt.Errorf("simt: need at least one resident warp")
	case c.ClockMHz <= 0:
		return fmt.Errorf("simt: clock must be positive")
	case c.EpochCycles < 0:
		return fmt.Errorf("simt: epoch length %d must not be negative", c.EpochCycles)
	case c.Engine > EngineFree:
		return fmt.Errorf("simt: unknown engine %d", c.Engine)
	}
	return nil
}

// EpochLen returns the effective epoch length of the epoch-barrier
// engine: EpochCycles (default DefaultEpochCycles) clamped to the
// minimum latency of an L2-bound access (L1HitLat + L2HitLat). The
// clamp is what makes deferred resolution exact: a request issued in an
// epoch cannot complete before that epoch's barrier, so resolving its
// hit/miss at the barrier never changes what a warp could have issued
// inside the epoch.
func (c Config) EpochLen() int64 {
	e := c.EpochCycles
	if e <= 0 {
		e = DefaultEpochCycles
	}
	if lim := c.Mem.L1HitLat + c.Mem.L2HitLat; lim > 0 && e > lim {
		e = lim
	}
	if e < 1 {
		e = 1
	}
	return int64(e)
}
