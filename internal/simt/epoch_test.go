package simt

import (
	"testing"

	"repro/internal/memsys"
)

// memHeavyFactory builds a looping kernel whose slots sweep a footprint
// much larger than the L2, so every SMX streams misses and evictions
// through the shared cache — the access pattern that exposed the
// free-running engine's cross-SMX nondeterminism.
func memHeavyFactory(iters int) Factory {
	return func(id int) (SMXProgram, error) {
		k := &testKernel{
			blocks: []BlockInfo{
				{Name: "loop", Insts: 2, MemInsts: 1, Reconv: 1},
				{Name: "exit", Insts: 1},
			},
			step: func(slot int32, block int, res *StepResult) {
				if block != 0 {
					res.Next = BlockExit
					return
				}
				// Distinct per-slot stride so warps diverge in time, with a
				// footprint of iters*1MB per SMX (L2 is 1.5MB total).
				res.NMem = 1
				res.Mem[0] = MemAccess{
					Addr:  uint64(id)<<30 | uint64(slot)*4096,
					Bytes: 4,
					Space: memsys.Tex,
				}
				res.Next = 0
			},
		}
		// Count loop trips per slot via a side table owned by the kernel.
		trips := make(map[int32]int)
		inner := k.step
		k.step = func(slot int32, block int, res *StepResult) {
			inner(slot, block, res)
			if block == 0 {
				trips[slot]++
				res.Mem[0].Addr += uint64(trips[slot]) * 128 * 17
				if trips[slot] >= iters {
					res.Next = 1
				}
			}
		}
		return SMXProgram{Kernel: k}, nil
	}
}

// The epoch-barrier engine must produce bit-identical device results on
// every run, with many SMXs hammering the shared L2.
func TestEpochEngineDeterministic(t *testing.T) {
	cfg := smallConfig(4)
	cfg.NumSMX = 6
	cfg.Engine = EngineEpoch
	var ref *GPUResult
	for i := 0; i < 4; i++ {
		res, err := RunGPU(cfg, memHeavyFactory(40))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Stats != ref.Stats {
			t.Fatalf("run %d device stats diverged: cycles %d vs %d, txns %d vs %d",
				i, res.Stats.Cycles, ref.Stats.Cycles,
				res.Stats.MemTransactions, ref.Stats.MemTransactions)
		}
		for s := range res.PerSMX {
			if res.PerSMX[s] != ref.PerSMX[s] {
				t.Fatalf("run %d SMX %d stats diverged: cycles %d vs %d",
					i, s, res.PerSMX[s].Cycles, ref.PerSMX[s].Cycles)
			}
		}
		if res.L1TexMissRate != ref.L1TexMissRate {
			t.Fatalf("run %d L1Tex miss rate diverged: %v vs %v", i, res.L1TexMissRate, ref.L1TexMissRate)
		}
	}
	if ref.Stats.MemTransactions == 0 {
		t.Fatal("workload performed no memory transactions; the test is vacuous")
	}
}

// With a single SMX the ordered drain replays requests in exactly the
// order the immediate locked L2 would have served them, and the
// deferred latency formula matches the immediate one — so the two
// engines must agree bit for bit.
func TestEpochEngineMatchesFreeOnSingleSMX(t *testing.T) {
	cfg := smallConfig(4)
	cfg.NumSMX = 1

	cfg.Engine = EngineEpoch
	epoch, err := RunGPU(cfg, memHeavyFactory(30))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = EngineFree
	free, err := RunGPU(cfg, memHeavyFactory(30))
	if err != nil {
		t.Fatal(err)
	}
	if epoch.Stats != free.Stats {
		t.Fatalf("single-SMX engines disagree: epoch cycles %d, free cycles %d (instrs %d vs %d)",
			epoch.Stats.Cycles, free.Stats.Cycles, epoch.Stats.WarpInstrs, free.Stats.WarpInstrs)
	}
}

// The free engine still runs multi-SMX workloads to completion.
func TestFreeEngineStillRuns(t *testing.T) {
	cfg := smallConfig(2)
	cfg.NumSMX = 3
	cfg.Engine = EngineFree
	res, err := RunGPU(cfg, memHeavyFactory(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retired == 0 {
		t.Error("no threads retired")
	}
}

// EpochLen clamps to the minimum L2-bound latency so deferred
// resolution can never be late, and respects explicit settings below
// the clamp.
func TestEpochLenClamp(t *testing.T) {
	cfg := DefaultConfig()
	if got, want := cfg.EpochLen(), int64(DefaultEpochCycles); got != want {
		t.Errorf("default EpochLen = %d, want %d", got, want)
	}
	cfg.EpochCycles = 16
	if got := cfg.EpochLen(); got != 16 {
		t.Errorf("explicit EpochLen = %d, want 16", got)
	}
	cfg.Mem.L1HitLat, cfg.Mem.L2HitLat = 3, 4
	cfg.EpochCycles = 100
	if got := cfg.EpochLen(); got != 7 {
		t.Errorf("clamped EpochLen = %d, want 7 (L1HitLat+L2HitLat)", got)
	}
}

// The engine must be insensitive to the epoch length for hit-only
// workloads (no shared-state interaction), and must error on invalid
// engine/epoch configuration.
func TestEngineConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EpochCycles = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative EpochCycles validated")
	}
	cfg = DefaultConfig()
	cfg.Engine = Engine(9)
	if err := cfg.Validate(); err == nil {
		t.Error("unknown engine validated")
	}
	if EngineEpoch.String() != "epoch" || EngineFree.String() != "free" || Engine(9).String() != "unknown" {
		t.Error("engine String() names wrong")
	}
}
