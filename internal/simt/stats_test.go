package simt

import (
	"testing"

	"repro/internal/statcheck"
)

// TestStatsAddCoverage pins that Stats.Add merges every numeric field,
// including the ActiveHist array and the max-merged Cycles. GPU-level
// results fold per-SMX stats with Add, so an uncovered field silently
// zeroes a device counter.
func TestStatsAddCoverage(t *testing.T) {
	if err := statcheck.AddCovers(Stats{}); err != nil {
		t.Error(err)
	}
}

// TestStatsAddCyclesMax pins the one non-additive merge: the device
// finishes when the slowest SMX finishes.
func TestStatsAddCyclesMax(t *testing.T) {
	var s Stats
	s.Add(Stats{Cycles: 100})
	s.Add(Stats{Cycles: 40})
	if s.Cycles != 100 {
		t.Errorf("Cycles = %d, want max 100", s.Cycles)
	}
}
