package simt

import (
	"testing"

	"repro/internal/memsys"
)

func TestInjectInstrs(t *testing.T) {
	k := &testKernel{
		blocks: []BlockInfo{{Name: "b", Insts: 1}},
		step:   func(slot int32, block int, res *StepResult) { res.Next = BlockExit },
	}
	cfg := smallConfig(1)
	l2 := memsys.NewL2(cfg.Mem)
	s, err := NewSMX(0, cfg, k, Hooks{}, l2)
	if err != nil {
		t.Fatal(err)
	}
	s.LaunchAll(0)
	w := s.Warp(0)
	s.InjectInstrs(w, 17, 12, TagSI, 5)
	st := s.Stats()
	if st.WarpInstrs != 17 || st.SIInstrs != 17 {
		t.Errorf("instr counters: %d/%d", st.WarpInstrs, st.SIInstrs)
	}
	if st.ActiveThreadSum != 17*12 || st.SIActiveSum != 17*12 {
		t.Errorf("active sums: %d/%d", st.ActiveThreadSum, st.SIActiveSum)
	}
	if st.ActiveHist[12] != 17 {
		t.Errorf("hist[12] = %d", st.ActiveHist[12])
	}
	// 17 instructions at 2 dispatch/cycle = 9 issue cycles + 5 extra.
	if rc := w.st.readyCycle[w.id]; rc < 14 {
		t.Errorf("warp not stalled: readyCycle = %d", rc)
	}
	// Zero and negative counts are no-ops.
	before := s.Stats().WarpInstrs
	s.InjectInstrs(w, 0, 10, TagNormal, 0)
	s.InjectInstrs(w, -3, 10, TagNormal, 0)
	if s.Stats().WarpInstrs != before {
		t.Errorf("no-op inject changed counters")
	}
}

func TestBarrierAndSpawnCounters(t *testing.T) {
	k := &testKernel{
		blocks: []BlockInfo{{Name: "b", Insts: 1}},
		step:   func(slot int32, block int, res *StepResult) { res.Next = BlockExit },
	}
	cfg := smallConfig(1)
	l2 := memsys.NewL2(cfg.Mem)
	s, err := NewSMX(0, cfg, k, Hooks{}, l2)
	if err != nil {
		t.Fatal(err)
	}
	s.AddBarrierStall(42)
	s.AddBarrierStall(-5) // ignored
	s.AddSpawnConflict(7)
	s.AddSpawnConflict(0) // ignored
	st := s.Stats()
	if st.BarrierStallCycles != 42 {
		t.Errorf("barrier cycles = %d", st.BarrierStallCycles)
	}
	if st.SpawnConflictCycles != 7 {
		t.Errorf("spawn cycles = %d", st.SpawnConflictCycles)
	}
}

func TestUtilizationBreakdownSI(t *testing.T) {
	var st Stats
	st.WarpInstrs = 10
	st.SIInstrs = 4
	st.ActiveHist[32] = 10
	bd := st.UtilizationBreakdown(32)
	if bd.SI != 0.4 {
		t.Errorf("SI share = %v", bd.SI)
	}
	var empty Stats
	if b := empty.UtilizationBreakdown(32); b.SI != 0 || b.W25to32 != 0 {
		t.Errorf("empty breakdown nonzero")
	}
}

func TestWarpAccessors(t *testing.T) {
	w := newWarp(3, 32)
	if w.ID() != 3 {
		t.Errorf("ID = %d", w.ID())
	}
	if !w.Done() {
		t.Errorf("fresh warp should be done until launched")
	}
	slots := make([]int32, 32)
	for i := range slots {
		slots[i] = int32(i)
	}
	w.Launch(0, slots)
	if w.Done() || w.Parked() {
		t.Errorf("launched warp in wrong phase")
	}
	if w.ActiveMask() != ^uint32(0) {
		t.Errorf("mask = %x", w.ActiveMask())
	}
	if w.StackDepth() != 1 {
		t.Errorf("stack depth = %d", w.StackDepth())
	}
	w.Park()
	if !w.Parked() {
		t.Errorf("park failed")
	}
	empty := make([]int32, 32)
	for i := range empty {
		empty[i] = -1
	}
	w.Resume(empty, 0)
	if !w.Done() {
		t.Errorf("empty resume should finish the warp")
	}
	// Launch with a partial mapping masks the empty lanes.
	slots[5] = -1
	w.Launch(0, slots)
	if w.ActiveMask()&(1<<5) != 0 {
		t.Errorf("lane 5 should be masked")
	}
}

func TestResumePanicsOnRunningWarp(t *testing.T) {
	w := newWarp(0, 32)
	slots := make([]int32, 32)
	w.Launch(0, slots)
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic")
		}
	}()
	w.Resume(slots, 0)
}

func TestRetireLanes(t *testing.T) {
	w := newWarp(0, 32)
	slots := make([]int32, 32)
	for i := range slots {
		slots[i] = int32(i)
	}
	w.Launch(0, slots)
	n := w.retireLanes(0b1111)
	if n != 4 {
		t.Errorf("retired %d", n)
	}
	if w.ActiveMask()&0b1111 != 0 {
		t.Errorf("lanes not removed from mask")
	}
	for l := 0; l < 4; l++ {
		if w.Slots()[l] != -1 {
			t.Errorf("slot %d not cleared", l)
		}
	}
	if w.retireLanes(0) != 0 {
		t.Errorf("empty retire should be 0")
	}
}
