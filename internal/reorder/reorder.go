// Package reorder defines the pluggable ray-reordering policy
// framework. A Policy packages one reordering technique — the paper's
// DRS, the DMK and TBC baselines, SER-style reorder-at-hit, global ray
// sorting, or no reordering at all — behind a single interface the
// harness instantiates per SMX, so the method dispatch is a registry
// lookup instead of a hard-coded switch and new techniques plug in
// without touching the harness.
//
// # Interface contract
//
// A Policy observes per-epoch ray/warp state through the engine hooks
// of the simt.SMXProgram it returns (issue gate, per-cycle tick,
// divergence and block-end interceptors) and proposes thread/warp
// permutations by remapping warp slots (Warp.SetMapping, Warp.Resume)
// or by permuting the input stream up front (StreamSorter). Every
// permutation carries a modeled hardware cost: either charged inside
// the engine (injected instructions, barrier/spawn stalls, gate
// stalls — the DRS/DMK/TBC/SER route) or reported out-of-band through
// Stats.CostCycles (the global-sort route), which the harness adds to
// the device cycle count before computing Mrays/s.
//
// # Determinism obligations
//
// Policies run inside the bit-deterministic epoch-barrier engine and
// must preserve its guarantees:
//
//   - Every choice must be a pure function of simulation state. No wall
//     clock, no global RNG, no map-iteration-order dependence (drslint
//     enforces this; sort collected keys first, or keep dense arrays).
//   - Ties must break deterministically, and the rule must be stated:
//     the convention is lowest-id first — lowest slot id, lowest warp
//     id, lowest block/target id — matching the engine's own
//     warp-scheduler tie-break. A sorted permutation must use a stable
//     order with the original index as the final key.
//   - A permutation may only reference live lanes: slots handed to
//     SetMapping/Resume must hold active contexts (or -1), and each at
//     most once. internal/gshuffle's property tests pin this for the
//     generalized automaton; policy tests should do the same.
//
// # Cost-model hooks
//
// In-engine costs: SMX.InjectInstrs (tagged instruction overhead, e.g.
// DMK's 17 SI dump/load instructions), SMX.AddBarrierStall (sync
// latency), SMX.AddSpawnConflict (contended co-processor memory), gate
// stalls (GateStall). Out-of-band costs: Stats.CostCycles for work
// modeled outside the simulated device, such as a global sorting pass
// between bounces; the harness folds it into the reported Mrays/s but
// never into device cycle counters (which stay byte-identical to an
// uncosted run).
//
// # Adding a policy
//
// Implement Policy (config receiver), return per-SMX Instances from
// NewSMX, register metrics under env.MetricsPrefix when env.Collector
// is non-nil, and add a Registration to the harness catalog. See
// DESIGN.md §11 for the worked example.
package reorder

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/progcheck"
	"repro/internal/simt"
)

// Policy is one configured ray-reordering technique. A Policy value
// owns its method-specific configuration (swap buffers, spawn banks,
// window sizes, ...); the harness asks it for per-SMX instances.
type Policy interface {
	// Name is the registry key ("drs", "dmk", "tbc", "ser", "sort",
	// "noop", "aila"). It appears in metric prefixes and result tables.
	Name() string
	// Summary is the one-line description -list-policies prints.
	Summary() string
	// Validate checks the policy's configuration before any device
	// state is built.
	Validate() error
	// Warps returns the resident warp count the policy requires per
	// SMX, or 0 to accept the harness default (Options.AilaWarps).
	Warps() int
	// Caps declares the engine capabilities the policy's kernel program
	// may use (gated blocks, TagCtrl instructions); progcheck verifies
	// the built kernel against exactly these.
	Caps() progcheck.Caps
	// NewSMX builds the policy's per-SMX kernel and hooks.
	NewSMX(env Env) (Instance, error)
}

// Env is the per-SMX build environment the harness hands to NewSMX.
type Env struct {
	// SMXID is the SMX index within the device.
	SMXID int
	// Cfg is the effective device configuration (warp count already
	// substituted by the harness).
	Cfg simt.Config
	// Data is the scene (BVH + triangles) shared by all SMXs.
	Data *kernels.SceneData
	// Pool holds this SMX's partition of the ray stream.
	Pool *kernels.Pool
	// Aila is the harness's baseline kernel configuration (speculative
	// traversal etc., SkipVerify already merged); policies that run the
	// stock while-while kernel use it verbatim.
	Aila kernels.AilaConfig
	// WhileIf is the harness's Kernel 1 configuration for gated-kernel
	// policies (SkipVerify already merged).
	WhileIf kernels.WhileIfConfig
	// SkipProgCheck disables kernel program verification (tests only).
	SkipProgCheck bool
	// Verify re-checks a built kernel against the policy's Caps; nil
	// when SkipProgCheck is set. Policies must call it on every kernel
	// they build when non-nil.
	Verify func(k simt.Kernel) error
	// Collector is the unified metrics layer (nil unless the run is
	// observed). Policies register their counters under MetricsPrefix.
	Collector *metrics.Collector
	// MetricsPrefix is "smx<ID>/<policy name>".
	MetricsPrefix string
}

// Instance is one SMX's instantiation of a policy: the kernel program
// plus hooks to run, and the per-ray results to merge.
type Instance interface {
	// Program returns the kernel, hooks and launch function the engine
	// runs for this SMX.
	Program() simt.SMXProgram
	// Hits returns the committed hit per pool ray index, valid after
	// the device run completes.
	Hits() []geom.Hit
}

// StatsReporter is an optional Instance extension: policies that track
// reordering activity report it in the generic shape so the harness
// can aggregate across SMXs and policies uniformly.
type StatsReporter interface {
	ReorderStats() Stats
}

// TypedStatser is an optional Instance extension: the legacy typed
// per-method stats (core.Stats, dmk.Stats, tbc.Stats) for callers that
// consume method-specific counters from harness.Result.
type TypedStatser interface {
	TypedStats() any
}

// StreamSorter is an optional Policy extension: a policy that reorders
// the ray stream globally, before the harness partitions it across
// SMXs. SortStream returns the permutation to apply — the device
// traces rays[perm[0]], rays[perm[1]], ... and the harness maps hits
// back to input order — plus the modeled cost in device cycles of the
// sorting pass (reported through Stats.CostCycles). A nil permutation
// means identity. The permutation must be a deterministic function of
// the ray stream alone.
type StreamSorter interface {
	SortStream(rays []geom.Ray) (perm []int, costCycles int64)
}

// Stats is the generic reordering-activity summary every policy can
// report (StatsReporter). CostCycles is the out-of-band modeled cost;
// in-engine costs are already part of the device cycle count.
type Stats struct {
	// Reorders counts reordering events: DRS swaps completed, DMK
	// respawns, TBC compactions, SER window sorts, global sort passes.
	Reorders int64
	// RaysMoved counts ray/thread contexts relocated by those events.
	RaysMoved int64
	// CostCycles is modeled reordering cost charged outside the engine
	// (zero for policies whose costs are charged in-engine).
	CostCycles int64
}

// Add merges o into s (statcheck.AddCovers guards field coverage).
func (s *Stats) Add(o Stats) {
	s.Reorders += o.Reorders
	s.RaysMoved += o.RaysMoved
	s.CostCycles += o.CostCycles
}

// UnknownPolicyError is the typed error for a policy name the registry
// does not know. Every layer that resolves names (harness options,
// drsbench flags, service job specs) surfaces this one error type, so
// an unknown method name fails in exactly one place.
type UnknownPolicyError struct {
	// Name is the unresolved policy name.
	Name string
	// Known lists the registered names in registration order.
	Known []string
}

func (e *UnknownPolicyError) Error() string {
	return fmt.Sprintf("reorder: unknown policy %q; valid: %v", e.Name, e.Known)
}

// Registration is one registry row: the policy name and summary plus a
// factory for a default-configured instance.
type Registration struct {
	Name    string
	Summary string
	// New returns a freshly default-configured Policy. Callers that
	// need non-default parameters construct the policy value directly
	// (the configs are exported) and pass it via harness options.
	New func() Policy
}

// Registry maps policy names to registrations. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	byName map[string]Registration
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Registration)}
}

// Register adds a registration. Duplicate names and nil factories are
// registration-time bugs, reported as errors so a catalog test can pin
// the set.
func (r *Registry) Register(reg Registration) error {
	switch {
	case reg.Name == "":
		return fmt.Errorf("reorder: registration with empty name")
	case reg.New == nil:
		return fmt.Errorf("reorder: policy %q registered without a factory", reg.Name)
	}
	if _, dup := r.byName[reg.Name]; dup {
		return fmt.Errorf("reorder: policy %q registered twice", reg.Name)
	}
	r.byName[reg.Name] = reg
	r.order = append(r.order, reg.Name)
	return nil
}

// MustRegister is Register that panics on error (catalog construction).
func (r *Registry) MustRegister(reg Registration) {
	if err := r.Register(reg); err != nil {
		panic(err)
	}
}

// Lookup returns the registration for name.
func (r *Registry) Lookup(name string) (Registration, bool) {
	reg, ok := r.byName[name]
	return reg, ok
}

// New returns a default-configured policy for name, or a typed
// *UnknownPolicyError naming the valid set.
func (r *Registry) New(name string) (Policy, error) {
	reg, ok := r.byName[name]
	if !ok {
		return nil, &UnknownPolicyError{Name: name, Known: r.Names()}
	}
	return reg.New(), nil
}

// Names returns the registered names in registration order (the
// canonical display and iteration order; it is not sorted, so the
// catalog controls presentation).
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// SortedNames returns the registered names sorted lexicographically.
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}
