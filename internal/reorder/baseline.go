package reorder

import (
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/progcheck"
	"repro/internal/simt"
)

// Baseline is the explicit no-reordering policy: the stock while-while
// kernel with IPDOM divergence handling and no hooks attached. It is
// registered twice — as "aila" (the paper's software baseline, with
// whatever kernel optimizations Options.Aila selects) and as "noop"
// (the speedup denominator of the cross-policy figure) — so "no
// reordering" is a measured point, not an implicit absence.
type Baseline struct {
	// PolicyName distinguishes the two registrations ("aila", "noop").
	PolicyName string
	// PolicySummary is the registry description.
	PolicySummary string
}

// NewAilaBaseline returns the paper's software baseline as a policy.
func NewAilaBaseline() *Baseline {
	return &Baseline{
		PolicyName:    "aila",
		PolicySummary: "Aila while-while kernel, no reordering (paper's software baseline)",
	}
}

// NewNoop returns the explicit no-op policy.
func NewNoop() *Baseline {
	return &Baseline{
		PolicyName:    "noop",
		PolicySummary: "explicit no-op baseline: IPDOM divergence only, zero reordering cost",
	}
}

// Name implements Policy.
func (b *Baseline) Name() string { return b.PolicyName }

// Summary implements Policy.
func (b *Baseline) Summary() string { return b.PolicySummary }

// Validate implements Policy; a baseline has no parameters.
func (b *Baseline) Validate() error { return nil }

// Warps implements Policy: 0 accepts the harness warp count.
func (b *Baseline) Warps() int { return 0 }

// Caps implements Policy: the while-while kernel needs no gate and no
// control instructions.
func (b *Baseline) Caps() progcheck.Caps { return progcheck.Caps{} }

// NewSMX implements Policy.
func (b *Baseline) NewSMX(env Env) (Instance, error) {
	k := kernels.NewAila(env.Data, env.Pool, env.Cfg.MaxWarpsPerSMX*env.Cfg.WarpSize, env.Aila)
	if env.Verify != nil {
		if err := env.Verify(k); err != nil {
			return nil, err
		}
	}
	return &baselineInstance{k: k}, nil
}

// baselineInstance is the no-hooks per-SMX instance.
type baselineInstance struct {
	k *kernels.Aila
}

func (i *baselineInstance) Program() simt.SMXProgram { return simt.SMXProgram{Kernel: i.k} }
func (i *baselineInstance) Hits() []geom.Hit         { return i.k.Hits }

// ReorderStats implements StatsReporter: a baseline never reorders.
func (i *baselineInstance) ReorderStats() Stats { return Stats{} }
