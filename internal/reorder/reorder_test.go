package reorder

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/statcheck"
)

func TestRegistryLookupAndOrder(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Registration{Name: "b", Summary: "second", New: func() Policy { return NewNoop() }})
	r.MustRegister(Registration{Name: "a", Summary: "first", New: func() Policy { return NewNoop() }})

	if got := r.Names(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("Names() = %v, want registration order [b a]", got)
	}
	if got := r.SortedNames(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("SortedNames() = %v, want [a b]", got)
	}
	reg, ok := r.Lookup("a")
	if !ok || reg.Summary != "first" {
		t.Fatalf("Lookup(a) = %+v, %v", reg, ok)
	}
	if _, ok := r.Lookup("zzz"); ok {
		t.Fatal("Lookup(zzz) should miss")
	}
}

func TestRegistryUnknownPolicyError(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Registration{Name: "noop", Summary: "s", New: func() Policy { return NewNoop() }})

	_, err := r.New("serr")
	if err == nil {
		t.Fatal("New(serr) should fail")
	}
	var ue *UnknownPolicyError
	if !errors.As(err, &ue) {
		t.Fatalf("error %T is not *UnknownPolicyError", err)
	}
	if ue.Name != "serr" {
		t.Fatalf("UnknownPolicyError.Name = %q", ue.Name)
	}
	if len(ue.Known) != 1 || ue.Known[0] != "noop" {
		t.Fatalf("UnknownPolicyError.Known = %v", ue.Known)
	}
	if !strings.Contains(ue.Error(), "serr") || !strings.Contains(ue.Error(), "noop") {
		t.Fatalf("error message %q should name the unknown policy and the known set", ue.Error())
	}
}

func TestRegistryRejectsDuplicatesAndEmpty(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(Registration{Name: "", New: func() Policy { return NewNoop() }}); err == nil {
		t.Fatal("empty name should be rejected")
	}
	if err := r.Register(Registration{Name: "x"}); err == nil {
		t.Fatal("nil constructor should be rejected")
	}
	if err := r.Register(Registration{Name: "x", New: func() Policy { return NewNoop() }}); err != nil {
		t.Fatalf("first registration failed: %v", err)
	}
	if err := r.Register(Registration{Name: "x", New: func() Policy { return NewNoop() }}); err == nil {
		t.Fatal("duplicate name should be rejected")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister on duplicate should panic")
		}
	}()
	r.MustRegister(Registration{Name: "x", New: func() Policy { return NewNoop() }})
}

func TestBaselinePolicies(t *testing.T) {
	for _, b := range []*Baseline{NewAilaBaseline(), NewNoop()} {
		if b.Name() == "" || b.Summary() == "" {
			t.Fatalf("baseline %+v missing name or summary", b)
		}
		if err := b.Validate(); err != nil {
			t.Fatalf("%s: Validate() = %v", b.Name(), err)
		}
		if b.Warps() != 0 {
			t.Fatalf("%s: Warps() = %d, want 0 (accept harness count)", b.Name(), b.Warps())
		}
		caps := b.Caps()
		if caps.Gate || caps.CtrlTag {
			t.Fatalf("%s: baseline must not claim engine capabilities", b.Name())
		}
	}
	if NewAilaBaseline().Name() == NewNoop().Name() {
		t.Fatal("the two baseline registrations must have distinct names")
	}
}

func TestStatsAddCovers(t *testing.T) {
	if err := statcheck.AddCovers(Stats{}); err != nil {
		t.Fatal(err)
	}
}
