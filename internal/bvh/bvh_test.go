package bvh

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/scene"
	"repro/internal/vec"
)

func buildTestScene(t testing.TB, b scene.Benchmark, budget int) (*scene.Scene, *BVH) {
	t.Helper()
	s := scene.Generate(b, budget)
	bv, err := Build(s.Tris, DefaultOptions())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s, bv
}

func TestBuildEmptyFails(t *testing.T) {
	if _, err := Build(nil, DefaultOptions()); err == nil {
		t.Errorf("expected error for empty input")
	}
}

func TestBuildSingleTriangle(t *testing.T) {
	tris := []geom.Triangle{{A: vec.New(0, 0, 0), B: vec.New(1, 0, 0), C: vec.New(0, 1, 0)}}
	bv, err := Build(tris, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := bv.Validate(); err != nil {
		t.Fatal(err)
	}
	r := geom.NewRay(vec.New(0.2, 0.2, -1), vec.New(0, 0, 1))
	h := bv.Intersect(r, nil)
	if h.TriIndex != 0 {
		t.Errorf("expected hit on tri 0, got %+v", h)
	}
}

func TestValidateOnAllScenes(t *testing.T) {
	for _, b := range scene.Benchmarks {
		_, bv := buildTestScene(t, b, 2500)
		if err := bv.Validate(); err != nil {
			t.Errorf("%v: %v", b, err)
		}
		if bv.MaxDepth <= 0 || bv.MaxDepth > 60 {
			t.Errorf("%v: suspicious depth %d", b, bv.MaxDepth)
		}
	}
}

// The BVH must return exactly the same closest hit as brute force.
func TestIntersectMatchesBruteForce(t *testing.T) {
	s, bv := buildTestScene(t, scene.ConferenceRoom, 1500)
	rnd := rand.New(rand.NewSource(9))
	center := s.Bounds.Centroid()
	for i := 0; i < 300; i++ {
		o := vec.New(
			float32(rnd.Float64())*20, float32(rnd.Float64())*5+0.2,
			float32(rnd.Float64())*12)
		d := center.Sub(o).Add(vec.New(
			float32(rnd.Float64()*4-2), float32(rnd.Float64()*4-2),
			float32(rnd.Float64()*4-2))).Norm()
		r := geom.NewRay(o, d)
		got := bv.Intersect(r, nil)
		// Brute force.
		want := geom.NoHit
		want.T = r.TMax
		for ti, tri := range s.Tris {
			if tt, u, v, ok := tri.Intersect(r, want.T); ok {
				want.T, want.U, want.V, want.TriIndex = tt, u, v, int32(ti)
			}
		}
		if want.TriIndex < 0 {
			want = geom.NoHit
		}
		if got.TriIndex != want.TriIndex {
			// Allow coincident-surface ties: accept if t matches.
			if got.TriIndex >= 0 && want.TriIndex >= 0 && abs(got.T-want.T) < 1e-4 {
				continue
			}
			t.Fatalf("ray %d: bvh hit %d (t=%v) brute %d (t=%v)", i, got.TriIndex, got.T, want.TriIndex, want.T)
		}
		if got.TriIndex >= 0 && abs(got.T-want.T) > 1e-3 {
			t.Fatalf("ray %d: t mismatch %v vs %v", i, got.T, want.T)
		}
	}
}

func TestIntersectAnyConsistent(t *testing.T) {
	_, bv := buildTestScene(t, scene.CrytekSponza, 1500)
	rnd := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		o := vec.New(float32(rnd.Float64())*30, float32(rnd.Float64())*14, float32(rnd.Float64())*14)
		d := vec.New(
			float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1),
			float32(rnd.Float64()*2-1))
		if d.Len() < 1e-3 {
			continue
		}
		r := geom.NewRay(o, d.Norm())
		closest := bv.Intersect(r, nil)
		any := bv.IntersectAny(r, nil)
		if (closest.TriIndex >= 0) != any {
			t.Fatalf("ray %d: closest hit=%v but any=%v", i, closest.TriIndex >= 0, any)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	_, bv := buildTestScene(t, scene.ConferenceRoom, 1200)
	var st TraversalStats
	r := geom.NewRay(vec.New(10, 3, 6), vec.New(0.3, -0.5, 0.2).Norm())
	bv.Intersect(r, &st)
	if st.Rays != 1 || st.NodesVisited == 0 {
		t.Errorf("stats not accumulated: %+v", st)
	}
	var st2 TraversalStats
	st2.Add(st)
	st2.Add(st)
	if st2.NodesVisited != 2*st.NodesVisited || st2.Rays != 2 {
		t.Errorf("Add wrong: %+v", st2)
	}
}

// Rays inside the closed conference room must always hit something.
func TestClosedRoomAlwaysHits(t *testing.T) {
	_, bv := buildTestScene(t, scene.ConferenceRoom, 1500)
	rnd := rand.New(rand.NewSource(17))
	for i := 0; i < 500; i++ {
		o := vec.New(
			1+float32(rnd.Float64())*18, 0.5+float32(rnd.Float64())*5,
			1+float32(rnd.Float64())*10)
		d := vec.New(
			float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1),
			float32(rnd.Float64()*2-1))
		if d.Len() < 1e-2 {
			continue
		}
		r := geom.NewRay(o, d.Norm())
		if h := bv.Intersect(r, nil); h.TriIndex < 0 {
			t.Fatalf("ray %d escaped the closed room: o=%v d=%v", i, o, d.Norm())
		}
	}
}

// Sponza rays should need more node visits on average than conference
// rays — the property §4.4 uses to explain sponza's slowness.
func TestSponzaVisitsMoreNodes(t *testing.T) {
	_, conf := buildTestScene(t, scene.ConferenceRoom, 4000)
	_, spz := buildTestScene(t, scene.CrytekSponza, 4000)
	visits := func(bv *BVH, xmax, ymax, zmax float32) float64 {
		rnd := rand.New(rand.NewSource(23))
		var st TraversalStats
		for i := 0; i < 2000; i++ {
			o := vec.New(
				float32(rnd.Float64())*xmax, float32(rnd.Float64())*ymax,
				float32(rnd.Float64())*zmax)
			d := vec.New(
				float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1),
				float32(rnd.Float64()*2-1))
			if d.Len() < 1e-2 {
				continue
			}
			bv.Intersect(geom.NewRay(o, d.Norm()), &st)
		}
		return float64(st.NodesVisited) / float64(st.Rays)
	}
	c := visits(conf, 20, 6, 12)
	s := visits(spz, 30, 14, 14)
	if s <= c {
		t.Logf("note: sponza %.1f vs conference %.1f node visits", s, c)
		t.Errorf("expected sponza to visit more nodes per ray (got %.1f vs %.1f)", s, c)
	}
}

func TestLeafSizeRespected(t *testing.T) {
	s := scene.Generate(scene.Plants, 3000)
	opts := DefaultOptions()
	opts.MaxLeafSize = 4
	bv, err := Build(s.Tris, opts)
	if err != nil {
		t.Fatal(err)
	}
	bv.LeafRanges(func(first, count int32) {
		if count > 4 {
			t.Errorf("leaf of size %d exceeds max 4", count)
		}
	})
}

func abs(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

func BenchmarkBuildConference(b *testing.B) {
	s := scene.Generate(scene.ConferenceRoom, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(s.Tris, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntersect(b *testing.B) {
	s := scene.Generate(scene.ConferenceRoom, 20000)
	bv, err := Build(s.Tris, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(1))
	rays := make([]geom.Ray, 1024)
	for i := range rays {
		o := vec.New(float32(rnd.Float64())*20, float32(rnd.Float64())*6, float32(rnd.Float64())*12)
		d := vec.New(float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1)).Norm()
		rays[i] = geom.NewRay(o, d)
	}
	_ = s
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bv.Intersect(rays[i%len(rays)], nil)
	}
}
