package bvh

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/scene"
	"repro/internal/vec"
)

func TestLBVHEmptyFails(t *testing.T) {
	if _, err := BuildLBVH(nil, 8); err == nil {
		t.Errorf("empty input accepted")
	}
}

func TestLBVHValidOnAllScenes(t *testing.T) {
	for _, b := range scene.Benchmarks {
		s := scene.Generate(b, 2500)
		bv, err := BuildLBVH(s.Tris, 8)
		if err != nil {
			t.Fatalf("%v: %v", b, err)
		}
		if err := bv.Validate(); err != nil {
			t.Errorf("%v: %v", b, err)
		}
	}
}

func TestLBVHMatchesBruteForce(t *testing.T) {
	s := scene.Generate(scene.ConferenceRoom, 1500)
	bv, err := BuildLBVH(s.Tris, 8)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(31))
	for i := 0; i < 300; i++ {
		o := vec.New(
			float32(rnd.Float64())*20, float32(rnd.Float64())*6,
			float32(rnd.Float64())*12)
		d := vec.New(
			float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1),
			float32(rnd.Float64()*2-1))
		if d.Len() < 1e-2 {
			continue
		}
		r := geom.NewRay(o, d.Norm())
		got := bv.Intersect(r, nil)
		want := geom.NoHit
		want.T = r.TMax
		for ti, tri := range s.Tris {
			if tt, u, v, ok := tri.Intersect(r, want.T); ok {
				want.T, want.U, want.V, want.TriIndex = tt, u, v, int32(ti)
			}
		}
		if want.TriIndex < 0 {
			want = geom.NoHit
		}
		if got.TriIndex != want.TriIndex {
			if got.TriIndex >= 0 && want.TriIndex >= 0 && abs(got.T-want.T) < 1e-4 {
				continue
			}
			t.Fatalf("ray %d: lbvh %d (t=%v), brute %d (t=%v)",
				i, got.TriIndex, got.T, want.TriIndex, want.T)
		}
	}
}

// The classic trade-off: LBVH builds faster, SAH traces with fewer node
// visits.
func TestSAHTracesBetterThanLBVH(t *testing.T) {
	s := scene.Generate(scene.CrytekSponza, 5000)
	sah, err := Build(s.Tris, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lbvh, err := BuildLBVH(s.Tris, DefaultOptions().MaxLeafSize)
	if err != nil {
		t.Fatal(err)
	}
	visits := func(bv *BVH) float64 {
		rnd := rand.New(rand.NewSource(5))
		var st TraversalStats
		for i := 0; i < 1500; i++ {
			o := vec.New(float32(rnd.Float64())*30, float32(rnd.Float64())*14, float32(rnd.Float64())*14)
			d := vec.New(float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1), float32(rnd.Float64()*2-1))
			if d.Len() < 1e-2 {
				continue
			}
			bv.Intersect(geom.NewRay(o, d.Norm()), &st)
		}
		return float64(st.NodesVisited) / float64(st.Rays)
	}
	sv := visits(sah)
	lv := visits(lbvh)
	if sv >= lv {
		t.Errorf("SAH visits %.1f nodes/ray, LBVH %.1f — expected SAH better", sv, lv)
	}
}

func TestMortonEncoding(t *testing.T) {
	// Bit 0 of z lands at bit 0; bit 0 of y at bit 1; bit 0 of x at bit 2.
	if encodeMorton3(1, 0, 0) != 4 || encodeMorton3(0, 1, 0) != 2 || encodeMorton3(0, 0, 1) != 1 {
		t.Errorf("morton low bits wrong: %d %d %d",
			encodeMorton3(1, 0, 0), encodeMorton3(0, 1, 0), encodeMorton3(0, 0, 1))
	}
	// Monotone along each axis when others fixed.
	prev := uint32(0)
	for v := uint32(0); v < 1024; v += 64 {
		c := encodeMorton3(v, 0, 0)
		if v > 0 && c <= prev {
			t.Fatalf("morton not monotone in x at %d", v)
		}
		prev = c
	}
	// expandBits keeps only 10 bits.
	if expandBits(0xffffffff) != expandBits(0x3ff) {
		t.Errorf("expandBits did not mask")
	}
}

func TestLBVHDegenerateIdenticalCentroids(t *testing.T) {
	// 100 triangles with the same centroid: identical Morton codes must
	// fall back to median splits without overflowing.
	tris := make([]geom.Triangle, 100)
	for i := range tris {
		tris[i] = geom.Triangle{
			A: vec.New(-1, 0, 0), B: vec.New(1, 0, 0), C: vec.New(0, 1, 0),
		}
	}
	bv, err := BuildLBVH(tris, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := bv.Validate(); err != nil {
		t.Fatal(err)
	}
	r := geom.NewRay(vec.New(0, 0.3, -1), vec.New(0, 0, 1))
	if h := bv.Intersect(r, nil); h.TriIndex < 0 {
		t.Errorf("degenerate LBVH missed")
	}
}

func BenchmarkBuildLBVH(b *testing.B) {
	s := scene.Generate(scene.ConferenceRoom, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildLBVH(s.Tris, 8); err != nil {
			b.Fatal(err)
		}
	}
}
