package bvh

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// BuildLBVH constructs a linear BVH by sorting triangles along a
// 30-bit Morton curve and splitting ranges at the highest differing
// bit (Lauterbach et al. / Karras-style). LBVHs build much faster than
// binned SAH but trace slower — the classic build-speed/trace-speed
// trade-off; the benchmarks quantify it on this codebase.
func BuildLBVH(tris []geom.Triangle, maxLeafSize int) (*BVH, error) {
	if len(tris) == 0 {
		return nil, fmt.Errorf("bvh: empty triangle list")
	}
	if maxLeafSize <= 0 {
		maxLeafSize = DefaultOptions().MaxLeafSize
	}
	// Scene bounds for Morton quantization.
	world := geom.EmptyAABB()
	for _, t := range tris {
		world = world.Union(t.Bounds())
	}
	diag := world.Diagonal()
	inv := func(d float32) float32 {
		if d <= 0 {
			return 0
		}
		return 1 / d
	}
	sx, sy, sz := inv(diag.X), inv(diag.Y), inv(diag.Z)

	prims := make([]mortonPrim, len(tris))
	for i, t := range tris {
		c := t.Centroid()
		mx := uint32(clamp01((c.X-world.Min.X)*sx) * 1023)
		my := uint32(clamp01((c.Y-world.Min.Y)*sy) * 1023)
		mz := uint32(clamp01((c.Z-world.Min.Z)*sz) * 1023)
		prims[i] = mortonPrim{index: int32(i), code: encodeMorton3(mx, my, mz)}
	}
	sort.Slice(prims, func(i, j int) bool {
		if prims[i].code != prims[j].code {
			return prims[i].code < prims[j].code
		}
		return prims[i].index < prims[j].index
	})

	b := &lbvhBuilder{tris: tris, prims: prims, maxLeaf: maxLeafSize}
	root := b.build(0, len(prims), 29, 0)
	out := &BVH{
		Nodes:    b.nodes,
		TriIndex: b.order,
		MaxDepth: b.depth,
		Bounds:   world,
	}
	out.Tris = make([]geom.Triangle, len(b.order))
	for i, oi := range b.order {
		out.Tris[i] = tris[oi]
	}
	if root.isLeaf {
		out.Nodes = append(out.Nodes, Node{
			LBounds: root.bounds, RBounds: geom.EmptyAABB(),
			Left: ^root.leafStart, LCount: root.leafCount,
			Right: ^int32(0), RCount: 0,
		})
	} else if root.nodeIndex != 0 {
		// The bottom-up join emits the root last; traversal expects it
		// at index 0. Swap it into place and retarget child references.
		ri := root.nodeIndex
		out.Nodes[0], out.Nodes[ri] = out.Nodes[ri], out.Nodes[0]
		for i := range out.Nodes {
			n := &out.Nodes[i]
			switch n.Left {
			case 0:
				n.Left = ri
			case ri:
				n.Left = 0
			}
			switch n.Right {
			case 0:
				n.Right = ri
			case ri:
				n.Right = 0
			}
		}
	}
	return out, nil
}

// mortonPrim pairs a triangle index with its Morton code.
type mortonPrim struct {
	index int32
	code  uint32
}

type lbvhBuilder struct {
	tris    []geom.Triangle
	prims   []mortonPrim
	maxLeaf int
	nodes   []Node
	order   []int32
	depth   int
}

func (b *lbvhBuilder) build(start, end, bit, depth int) buildResult {
	if depth > b.depth {
		b.depth = depth
	}
	count := end - start
	if count <= b.maxLeaf || bit < 0 {
		if count > b.maxLeaf {
			// Identical Morton codes: median-split recursively.
			mid := start + count/2
			return b.join(b.build(start, mid, -1, depth+1), b.build(mid, end, -1, depth+1))
		}
		return b.makeLeaf(start, end)
	}
	mask := uint32(1) << uint(bit)
	// Find the split point: first prim whose code has the bit set.
	split := start + sort.Search(count, func(i int) bool {
		return b.prims[start+i].code&mask != 0
	})
	if split == start || split == end {
		return b.build(start, end, bit-1, depth)
	}
	return b.join(
		b.build(start, split, bit-1, depth+1),
		b.build(split, end, bit-1, depth+1))
}

// join creates an inner node over two children.
func (b *lbvhBuilder) join(left, right buildResult) buildResult {
	n := Node{LBounds: left.bounds, RBounds: right.bounds}
	if left.isLeaf {
		n.Left = ^left.leafStart
		n.LCount = left.leafCount
	} else {
		n.Left = left.nodeIndex
	}
	if right.isLeaf {
		n.Right = ^right.leafStart
		n.RCount = right.leafCount
	} else {
		n.Right = right.nodeIndex
	}
	idx := int32(len(b.nodes))
	b.nodes = append(b.nodes, n)
	return buildResult{nodeIndex: idx, bounds: left.bounds.Union(right.bounds)}
}

func (b *lbvhBuilder) makeLeaf(start, end int) buildResult {
	leafStart := int32(len(b.order))
	bounds := geom.EmptyAABB()
	for i := start; i < end; i++ {
		b.order = append(b.order, b.prims[i].index)
		bounds = bounds.Union(b.tris[b.prims[i].index].Bounds())
	}
	return buildResult{
		isLeaf:    true,
		leafStart: leafStart,
		leafCount: int32(end - start),
		bounds:    bounds,
	}
}

// encodeMorton3 interleaves the low 10 bits of x, y, z.
func encodeMorton3(x, y, z uint32) uint32 {
	return (expandBits(x) << 2) | (expandBits(y) << 1) | expandBits(z)
}

// expandBits spreads the low 10 bits of v so there are two zero bits
// between each.
func expandBits(v uint32) uint32 {
	v &= 0x3ff
	v = (v | v<<16) & 0x030000ff
	v = (v | v<<8) & 0x0300f00f
	v = (v | v<<4) & 0x030c30c3
	v = (v | v<<2) & 0x09249249
	return v
}

func clamp01(f float32) float32 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}
