// Package bvh builds and traverses bounding volume hierarchies over
// triangle scenes. The builder is a binned surface-area-heuristic (SAH)
// builder; the flattened node layout mirrors the Aila-style GPU layout
// (each inner node stores both children's bounds) so the simulated
// traversal kernels and the memory model can address nodes and
// triangles as fixed-size records.
package bvh

import (
	"fmt"
	"sort"

	"repro/internal/geom"
	"repro/internal/vec"
)

// Memory layout constants used by the simulated kernels' address model.
const (
	// NodeBytes is the simulated size of one inner node (two child
	// AABBs plus child indices, as in Aila's Kepler kernel layout).
	NodeBytes = 64
	// TriBytes is the simulated size of one triangle record (Woop
	// transform sized).
	TriBytes = 48
)

// Leaf child encoding: children >= 0 are inner node indices; children
// < 0 encode a leaf as ^child = first-triangle index, with the count in
// the corresponding count field.

// Node is one inner node of the flattened BVH. Each node holds both
// children's bounds so a traversal step tests two boxes per node fetch.
type Node struct {
	LBounds, RBounds geom.AABB
	// Left/Right: inner node index if >= 0, otherwise leaf with first
	// triangle ^Left (or ^Right) and LCount/RCount triangles.
	Left, Right    int32
	LCount, RCount int32
}

// BVH is a flattened bounding volume hierarchy.
type BVH struct {
	Nodes []Node
	// Tris are the scene triangles reordered so each leaf is a
	// contiguous range.
	Tris []geom.Triangle
	// TriIndex maps reordered triangle positions to original scene
	// triangle indices.
	TriIndex []int32
	// Bounds is the root bounding box.
	Bounds geom.AABB
	// MaxDepth is the deepest leaf's depth (root = 0); it bounds the
	// traversal stack the simulated kernels need.
	MaxDepth int
}

// Options control BVH construction.
type Options struct {
	// MaxLeafSize is the largest number of triangles a leaf may hold.
	MaxLeafSize int
	// NumBins is the number of SAH bins per axis.
	NumBins int
	// TraversalCost is the SAH cost of one traversal step relative to
	// one intersection test.
	TraversalCost float32
}

// DefaultOptions returns the builder configuration used throughout the
// experiments: 8-triangle leaves, 16 bins.
func DefaultOptions() Options {
	return Options{MaxLeafSize: 8, NumBins: 16, TraversalCost: 1.2}
}

type primInfo struct {
	index    int32
	bounds   geom.AABB
	centroid [3]float32
}

type builder struct {
	opts  Options
	prims []primInfo
	tris  []geom.Triangle
	nodes []Node
	order []int32
	depth int
}

// Build constructs a BVH over tris with the given options.
func Build(tris []geom.Triangle, opts Options) (*BVH, error) {
	if len(tris) == 0 {
		return nil, fmt.Errorf("bvh: empty triangle list")
	}
	if opts.MaxLeafSize <= 0 {
		opts.MaxLeafSize = DefaultOptions().MaxLeafSize
	}
	if opts.NumBins < 2 {
		opts.NumBins = DefaultOptions().NumBins
	}
	if opts.TraversalCost <= 0 {
		opts.TraversalCost = DefaultOptions().TraversalCost
	}
	b := &builder{opts: opts, tris: tris}
	b.prims = make([]primInfo, len(tris))
	for i, t := range tris {
		bb := t.Bounds()
		c := bb.Centroid()
		b.prims[i] = primInfo{index: int32(i), bounds: bb, centroid: [3]float32{c.X, c.Y, c.Z}}
	}
	root := b.build(0, len(b.prims), 0)
	bvh := &BVH{
		Nodes:    b.nodes,
		TriIndex: b.order,
		MaxDepth: b.depth,
	}
	bvh.Tris = make([]geom.Triangle, len(b.order))
	for i, oi := range b.order {
		bvh.Tris[i] = tris[oi]
	}
	// If the whole scene became a single leaf, synthesize a root node
	// with the leaf in both... instead, wrap: make a root whose left is
	// the leaf and right is an empty leaf.
	if root.isLeaf {
		n := Node{
			LBounds: root.bounds, RBounds: geom.EmptyAABB(),
			Left: ^root.leafStart, LCount: root.leafCount,
			Right: ^int32(0), RCount: 0,
		}
		bvh.Nodes = append(bvh.Nodes, n)
	}
	bvh.Bounds = root.bounds
	return bvh, nil
}

type buildResult struct {
	isLeaf    bool
	nodeIndex int32
	leafStart int32
	leafCount int32
	bounds    geom.AABB
}

func (b *builder) build(start, end, depth int) buildResult {
	if depth > b.depth {
		b.depth = depth
	}
	count := end - start
	bounds := geom.EmptyAABB()
	cbounds := geom.EmptyAABB()
	for i := start; i < end; i++ {
		bounds = bounds.Union(b.prims[i].bounds)
		c := b.prims[i].centroid
		cbounds = cbounds.Extend(vec.V3{X: c[0], Y: c[1], Z: c[2]})
	}
	if count <= b.opts.MaxLeafSize {
		return b.makeLeaf(start, end, bounds)
	}
	axis, split, ok := b.chooseSplit(start, end, bounds, cbounds, count)
	if !ok {
		// Degenerate centroids: median split on the largest axis.
		axis = cbounds.Diagonal().MaxAxis()
		mid := start + count/2
		sort.Slice(b.prims[start:end], func(i, j int) bool {
			return b.prims[start+i].centroid[axis] < b.prims[start+j].centroid[axis]
		})
		split = mid
	}
	if split <= start || split >= end {
		split = start + count/2
	}
	nodeIdx := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{}) // reserve
	left := b.build(start, split, depth+1)
	right := b.build(split, end, depth+1)
	n := Node{LBounds: left.bounds, RBounds: right.bounds}
	if left.isLeaf {
		n.Left = ^left.leafStart
		n.LCount = left.leafCount
	} else {
		n.Left = left.nodeIndex
	}
	if right.isLeaf {
		n.Right = ^right.leafStart
		n.RCount = right.leafCount
	} else {
		n.Right = right.nodeIndex
	}
	b.nodes[nodeIdx] = n
	return buildResult{nodeIndex: nodeIdx, bounds: bounds}
}

func (b *builder) makeLeaf(start, end int, bounds geom.AABB) buildResult {
	leafStart := int32(len(b.order))
	for i := start; i < end; i++ {
		b.order = append(b.order, b.prims[i].index)
	}
	return buildResult{
		isLeaf:    true,
		leafStart: leafStart,
		leafCount: int32(end - start),
		bounds:    bounds,
	}
}

// chooseSplit performs binned SAH on the centroid bounds. It partitions
// prims[start:end] in place and returns the split point.
func (b *builder) chooseSplit(start, end int, bounds, cbounds geom.AABB, count int) (axis, split int, ok bool) {
	diag := cbounds.Diagonal()
	axis = diag.MaxAxis()
	extent := diag.Axis(axis)
	if extent <= 1e-7 {
		return axis, 0, false
	}
	nb := b.opts.NumBins
	type bin struct {
		count  int
		bounds geom.AABB
	}
	bins := make([]bin, nb)
	for i := range bins {
		bins[i].bounds = geom.EmptyAABB()
	}
	lo := cbounds.Min.Axis(axis)
	scale := float32(nb) / extent
	binOf := func(c float32) int {
		k := int((c - lo) * scale)
		if k < 0 {
			k = 0
		}
		if k >= nb {
			k = nb - 1
		}
		return k
	}
	for i := start; i < end; i++ {
		k := binOf(b.prims[i].centroid[axis])
		bins[k].count++
		bins[k].bounds = bins[k].bounds.Union(b.prims[i].bounds)
	}
	// Sweep to find the cheapest split plane.
	leftArea := make([]float32, nb)
	leftCount := make([]int, nb)
	acc := geom.EmptyAABB()
	cnt := 0
	for i := 0; i < nb-1; i++ {
		acc = acc.Union(bins[i].bounds)
		cnt += bins[i].count
		leftArea[i] = acc.SurfaceArea()
		leftCount[i] = cnt
	}
	bestCost := float32(geom.Inf)
	bestBin := -1
	acc = geom.EmptyAABB()
	cnt = 0
	total := bounds.SurfaceArea()
	if total <= 0 {
		return axis, 0, false
	}
	for i := nb - 1; i >= 1; i-- {
		acc = acc.Union(bins[i].bounds)
		cnt += bins[i].count
		lc := leftCount[i-1]
		rc := cnt
		if lc == 0 || rc == 0 {
			continue
		}
		cost := b.opts.TraversalCost +
			(leftArea[i-1]*float32(lc)+acc.SurfaceArea()*float32(rc))/total
		if cost < bestCost {
			bestCost = cost
			bestBin = i - 1
		}
	}
	leafCost := float32(count)
	if bestBin < 0 || (bestCost >= leafCost && count <= 4*b.opts.MaxLeafSize) {
		return axis, 0, false
	}
	// Partition in place around the chosen bin boundary.
	i, j := start, end-1
	for i <= j {
		if binOf(b.prims[i].centroid[axis]) <= bestBin {
			i++
		} else {
			b.prims[i], b.prims[j] = b.prims[j], b.prims[i]
			j--
		}
	}
	return axis, i, i > start && i < end
}
