package bvh

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/vec"
)

func errorfBVH(format string, args ...any) error {
	return fmt.Errorf("bvh: "+format, args...)
}

func vecSplat(s float32) vec.V3 { return vec.Splat(s) }

// TraversalStats accumulates work counters over one or more rays; the
// experiments use these to explain performance differences (e.g. sponza
// rays visiting more nodes than other scenes, §4.4).
type TraversalStats struct {
	NodesVisited int64
	LeavesTested int64
	TrisTested   int64
	Rays         int64
	Hits         int64
}

// Add merges other into s.
func (s *TraversalStats) Add(other TraversalStats) {
	s.NodesVisited += other.NodesVisited
	s.LeavesTested += other.LeavesTested
	s.TrisTested += other.TrisTested
	s.Rays += other.Rays
	s.Hits += other.Hits
}

// Intersect finds the closest triangle hit by r, returning the hit with
// TriIndex referring to the ORIGINAL scene triangle index (via
// TriIndex), or geom.NoHit. The optional stats pointer accumulates
// work counters.
func (b *BVH) Intersect(r geom.Ray, stats *TraversalStats) geom.Hit {
	hit := geom.NoHit
	hit.T = r.TMax
	invDir := r.InvDir()
	var stack [64]int32
	sp := 0
	stack[sp] = 0
	sp++
	if len(b.Nodes) == 0 {
		return geom.NoHit
	}
	for sp > 0 {
		sp--
		ni := stack[sp]
		n := &b.Nodes[ni]
		if stats != nil {
			stats.NodesVisited++
		}
		rr := r
		rr.TMax = hit.T
		tl, okl := n.LBounds.IntersectRay(rr, invDir)
		tr, okr := n.RBounds.IntersectRay(rr, invDir)
		// Visit nearer child first by pushing the farther one below.
		type childRef struct {
			idx   int32
			count int32
			t     float32
		}
		var near, far childRef
		hasNear, hasFar := false, false
		if okl && okr {
			if tl <= tr {
				near = childRef{n.Left, n.LCount, tl}
				far = childRef{n.Right, n.RCount, tr}
			} else {
				near = childRef{n.Right, n.RCount, tr}
				far = childRef{n.Left, n.LCount, tl}
			}
			hasNear, hasFar = true, true
		} else if okl {
			near = childRef{n.Left, n.LCount, tl}
			hasNear = true
		} else if okr {
			near = childRef{n.Right, n.RCount, tr}
			hasNear = true
		}
		process := func(c childRef) {
			if c.idx >= 0 {
				stack[sp] = c.idx
				sp++
				return
			}
			first := ^c.idx
			if c.count == 0 {
				return // empty leaf (padded root)
			}
			if stats != nil {
				stats.LeavesTested++
			}
			for i := first; i < first+c.count; i++ {
				if stats != nil {
					stats.TrisTested++
				}
				if t, u, v, ok := b.Tris[i].Intersect(r, hit.T); ok {
					hit.T = t
					hit.U = u
					hit.V = v
					hit.TriIndex = b.TriIndex[i]
				}
			}
		}
		if hasFar {
			// Push far child first so near is processed next.
			if far.idx >= 0 {
				stack[sp] = far.idx
				sp++
			} else {
				process(far)
			}
		}
		if hasNear {
			process(near)
		}
	}
	if stats != nil {
		stats.Rays++
		if hit.TriIndex >= 0 {
			stats.Hits++
		}
	}
	if hit.TriIndex < 0 {
		return geom.NoHit
	}
	return hit
}

// IntersectAny reports whether r hits anything (shadow-ray query),
// terminating at the first hit found.
func (b *BVH) IntersectAny(r geom.Ray, stats *TraversalStats) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	invDir := r.InvDir()
	var stack [64]int32
	sp := 0
	stack[sp] = 0
	sp++
	for sp > 0 {
		sp--
		ni := stack[sp]
		node := &b.Nodes[ni]
		if stats != nil {
			stats.NodesVisited++
		}
		check := func(idx, count int32, box geom.AABB) bool {
			if _, ok := box.IntersectRay(r, invDir); !ok {
				return false
			}
			if idx >= 0 {
				stack[sp] = idx
				sp++
				return false
			}
			first := ^idx
			if stats != nil && count > 0 {
				stats.LeavesTested++
			}
			for i := first; i < first+count; i++ {
				if stats != nil {
					stats.TrisTested++
				}
				if _, _, _, ok := b.Tris[i].Intersect(r, r.TMax); ok {
					return true
				}
			}
			return false
		}
		if check(node.Left, node.LCount, node.LBounds) {
			return true
		}
		if check(node.Right, node.RCount, node.RBounds) {
			return true
		}
	}
	return false
}

// NodeCount returns the number of inner nodes.
func (b *BVH) NodeCount() int { return len(b.Nodes) }

// LeafRanges iterates over all leaves, calling fn with each leaf's
// first triangle index and count. Used by validation and tests.
func (b *BVH) LeafRanges(fn func(first, count int32)) {
	for _, n := range b.Nodes {
		if n.Left < 0 && n.LCount > 0 {
			fn(^n.Left, n.LCount)
		}
		if n.Right < 0 && n.RCount > 0 {
			fn(^n.Right, n.RCount)
		}
	}
}

// Validate checks structural invariants: every triangle appears in
// exactly one leaf, child bounds contain their triangles, and child
// node indices are in range and acyclic (tree-shaped).
func (b *BVH) Validate() error {
	seen := make([]int, len(b.Tris))
	b.LeafRanges(func(first, count int32) {
		for i := first; i < first+count; i++ {
			if i >= 0 && int(i) < len(seen) {
				seen[i]++
			}
		}
	})
	for i, c := range seen {
		if c != 1 {
			return errorfBVH("triangle slot %d referenced %d times", i, c)
		}
	}
	// Bounds containment per child.
	for ni, n := range b.Nodes {
		if err := b.validateChild(ni, n.Left, n.LCount, n.LBounds); err != nil {
			return err
		}
		if err := b.validateChild(ni, n.Right, n.RCount, n.RBounds); err != nil {
			return err
		}
	}
	// Each inner node referenced at most once (acyclic, single parent).
	refs := make([]int, len(b.Nodes))
	for _, n := range b.Nodes {
		if n.Left >= 0 {
			refs[n.Left]++
		}
		if n.Right >= 0 {
			refs[n.Right]++
		}
	}
	for i := 1; i < len(refs); i++ {
		if refs[i] != 1 {
			return errorfBVH("node %d has %d parents", i, refs[i])
		}
	}
	if len(refs) > 0 && refs[0] != 0 {
		return errorfBVH("root has a parent")
	}
	return nil
}

func (b *BVH) validateChild(parent int, idx, count int32, bounds geom.AABB) error {
	if idx >= 0 {
		if int(idx) >= len(b.Nodes) {
			return errorfBVH("node %d child index %d out of range", parent, idx)
		}
		return nil
	}
	first := ^idx
	if count == 0 {
		return nil
	}
	if int(first+count) > len(b.Tris) {
		return errorfBVH("node %d leaf range [%d,%d) out of range", parent, first, first+count)
	}
	grow := bounds
	grow.Min = grow.Min.Sub(vecSplat(1e-4))
	grow.Max = grow.Max.Add(vecSplat(1e-4))
	for i := first; i < first+count; i++ {
		if !grow.ContainsBox(b.Tris[i].Bounds()) {
			return errorfBVH("node %d leaf triangle %d escapes child bounds", parent, i)
		}
	}
	return nil
}
