// Package vec provides the small 3-component vector algebra used by the
// ray tracing substrates. Vectors are value types built on float32 to
// match the arithmetic width of the simulated GPU kernels.
package vec

import "math"

// V3 is a 3-component single-precision vector.
type V3 struct {
	X, Y, Z float32
}

// New constructs a vector from its components.
func New(x, y, z float32) V3 { return V3{x, y, z} }

// Splat returns a vector with all components equal to s.
func Splat(s float32) V3 { return V3{s, s, s} }

// Add returns a + b.
func (a V3) Add(b V3) V3 { return V3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V3) Sub(b V3) V3 { return V3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Mul returns the component-wise product a * b.
func (a V3) Mul(b V3) V3 { return V3{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Scale returns a * s.
func (a V3) Scale(s float32) V3 { return V3{a.X * s, a.Y * s, a.Z * s} }

// Neg returns -a.
func (a V3) Neg() V3 { return V3{-a.X, -a.Y, -a.Z} }

// Dot returns the inner product of a and b.
func (a V3) Dot(b V3) float32 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a × b.
func (a V3) Cross(b V3) V3 {
	return V3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean length of a.
func (a V3) Len() float32 { return float32(math.Sqrt(float64(a.Dot(a)))) }

// Len2 returns the squared length of a.
func (a V3) Len2() float32 { return a.Dot(a) }

// Norm returns a scaled to unit length. The zero vector is returned
// unchanged so callers need not special-case degenerate inputs.
func (a V3) Norm() V3 {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Min returns the component-wise minimum of a and b.
func (a V3) Min(b V3) V3 {
	return V3{min32(a.X, b.X), min32(a.Y, b.Y), min32(a.Z, b.Z)}
}

// Max returns the component-wise maximum of a and b.
func (a V3) Max(b V3) V3 {
	return V3{max32(a.X, b.X), max32(a.Y, b.Y), max32(a.Z, b.Z)}
}

// Lerp linearly interpolates from a to b by t.
func (a V3) Lerp(b V3, t float32) V3 { return a.Add(b.Sub(a).Scale(t)) }

// Axis returns component i (0=X, 1=Y, 2=Z).
func (a V3) Axis(i int) float32 {
	switch i {
	case 0:
		return a.X
	case 1:
		return a.Y
	default:
		return a.Z
	}
}

// SetAxis returns a copy of a with component i replaced by v.
func (a V3) SetAxis(i int, v float32) V3 {
	switch i {
	case 0:
		a.X = v
	case 1:
		a.Y = v
	default:
		a.Z = v
	}
	return a
}

// MaxAxis returns the index of the largest component.
func (a V3) MaxAxis() int {
	if a.X >= a.Y && a.X >= a.Z {
		return 0
	}
	if a.Y >= a.Z {
		return 1
	}
	return 2
}

// Abs returns the component-wise absolute value of a.
func (a V3) Abs() V3 {
	return V3{abs32(a.X), abs32(a.Y), abs32(a.Z)}
}

// MaxComp returns the largest component value.
func (a V3) MaxComp() float32 { return max32(a.X, max32(a.Y, a.Z)) }

// Luminance returns the Rec. 709 luma of a colour stored in a vector.
func (a V3) Luminance() float32 {
	return 0.2126*a.X + 0.7152*a.Y + 0.0722*a.Z
}

// IsFinite reports whether all components are finite numbers.
func (a V3) IsFinite() bool {
	return finite(a.X) && finite(a.Y) && finite(a.Z)
}

// OrthoBasis builds an orthonormal basis (t, b) around unit normal n
// using the branchless method of Duff et al.
func OrthoBasis(n V3) (t, b V3) {
	sign := float32(1)
	if n.Z < 0 {
		sign = -1
	}
	a := -1 / (sign + n.Z)
	c := n.X * n.Y * a
	t = V3{1 + sign*n.X*n.X*a, sign * c, -sign * n.X}
	b = V3{c, sign + n.Y*n.Y*a, -n.Y}
	return t, b
}

// Reflect returns direction d mirrored about unit normal n.
func Reflect(d, n V3) V3 { return d.Sub(n.Scale(2 * d.Dot(n))) }

func min32(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func abs32(a float32) float32 {
	if a < 0 {
		return -a
	}
	return a
}

func finite(f float32) bool {
	return !math.IsNaN(float64(f)) && !math.IsInf(float64(f), 0)
}
