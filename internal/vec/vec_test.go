package vec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func approxV(a, b V3, eps float32) bool {
	return approx(a.X, b.X, eps) && approx(a.Y, b.Y, eps) && approx(a.Z, b.Z, eps)
}

func TestAddSub(t *testing.T) {
	a := New(1, 2, 3)
	b := New(4, -5, 6)
	if got := a.Add(b); got != New(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != New(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
}

func TestMulScaleNeg(t *testing.T) {
	a := New(1, -2, 3)
	if got := a.Mul(New(2, 3, -1)); got != New(2, -6, -3) {
		t.Errorf("Mul = %v", got)
	}
	if got := a.Scale(2); got != New(2, -4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Neg(); got != New(-1, 2, -3) {
		t.Errorf("Neg = %v", got)
	}
}

func TestDotCross(t *testing.T) {
	x := New(1, 0, 0)
	y := New(0, 1, 0)
	z := New(0, 0, 1)
	if x.Dot(y) != 0 || x.Dot(x) != 1 {
		t.Errorf("Dot basis failed")
	}
	if x.Cross(y) != z {
		t.Errorf("x cross y = %v", x.Cross(y))
	}
	if y.Cross(z) != x {
		t.Errorf("y cross z = %v", y.Cross(z))
	}
}

func TestLenNorm(t *testing.T) {
	a := New(3, 4, 0)
	if a.Len() != 5 {
		t.Errorf("Len = %v", a.Len())
	}
	if a.Len2() != 25 {
		t.Errorf("Len2 = %v", a.Len2())
	}
	n := a.Norm()
	if !approx(n.Len(), 1, 1e-6) {
		t.Errorf("Norm length = %v", n.Len())
	}
	zero := V3{}
	if zero.Norm() != zero {
		t.Errorf("zero Norm changed: %v", zero.Norm())
	}
}

func TestMinMaxLerp(t *testing.T) {
	a := New(1, 5, -2)
	b := New(3, 2, -1)
	if a.Min(b) != New(1, 2, -2) {
		t.Errorf("Min = %v", a.Min(b))
	}
	if a.Max(b) != New(3, 5, -1) {
		t.Errorf("Max = %v", a.Max(b))
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); !approxV(got, b, 1e-6) {
		t.Errorf("Lerp(1) = %v", got)
	}
}

func TestAxisHelpers(t *testing.T) {
	a := New(7, 8, 9)
	for i := 0; i < 3; i++ {
		want := []float32{7, 8, 9}[i]
		if a.Axis(i) != want {
			t.Errorf("Axis(%d) = %v", i, a.Axis(i))
		}
	}
	if a.SetAxis(1, 0) != New(7, 0, 9) {
		t.Errorf("SetAxis = %v", a.SetAxis(1, 0))
	}
	if New(1, 2, 3).MaxAxis() != 2 || New(5, 2, 3).MaxAxis() != 0 || New(1, 9, 3).MaxAxis() != 1 {
		t.Errorf("MaxAxis wrong")
	}
}

func TestAbsMaxCompLuminance(t *testing.T) {
	if New(-1, 2, -3).Abs() != New(1, 2, 3) {
		t.Errorf("Abs failed")
	}
	if New(-1, 2, -3).MaxComp() != 2 {
		t.Errorf("MaxComp failed")
	}
	if !approx(New(1, 1, 1).Luminance(), 1, 1e-4) {
		t.Errorf("Luminance of white = %v", New(1, 1, 1).Luminance())
	}
}

func TestIsFinite(t *testing.T) {
	if !New(1, 2, 3).IsFinite() {
		t.Errorf("finite vector flagged")
	}
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	if New(inf, 0, 0).IsFinite() || New(0, nan, 0).IsFinite() {
		t.Errorf("non-finite vector passed")
	}
}

func TestReflect(t *testing.T) {
	d := New(1, -1, 0).Norm()
	n := New(0, 1, 0)
	r := Reflect(d, n)
	if !approxV(r, New(1, 1, 0).Norm(), 1e-6) {
		t.Errorf("Reflect = %v", r)
	}
}

func TestOrthoBasis(t *testing.T) {
	dirs := []V3{
		New(0, 0, 1), New(0, 0, -1), New(1, 0, 0),
		New(0.3, -0.5, 0.8).Norm(), New(-0.7, 0.7, 0.14).Norm(),
	}
	for _, n := range dirs {
		tt, b := OrthoBasis(n)
		if !approx(tt.Len(), 1, 1e-5) || !approx(b.Len(), 1, 1e-5) {
			t.Errorf("basis not unit for %v: %v %v", n, tt.Len(), b.Len())
		}
		if !approx(tt.Dot(n), 0, 1e-5) || !approx(b.Dot(n), 0, 1e-5) || !approx(tt.Dot(b), 0, 1e-5) {
			t.Errorf("basis not orthogonal for %v", n)
		}
	}
}

// Property: dot product is commutative and distributes over addition.
func TestQuickDotProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float32) bool {
		a, b, c := New(ax, ay, az), New(bx, by, bz), New(cx, cy, cz)
		if a.Dot(b) != b.Dot(a) {
			return false
		}
		lhs := float64(a.Dot(b.Add(c)))
		rhs := float64(a.Dot(b)) + float64(a.Dot(c))
		return math.Abs(lhs-rhs) <= 1e-2*(1+math.Abs(lhs))
	}
	cfg := &quick.Config{MaxCount: 200, Values: smallVecValues(9)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: cross product is orthogonal to both operands.
func TestQuickCrossOrthogonal(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float32) bool {
		a, b := New(ax, ay, az), New(bx, by, bz)
		c := a.Cross(b)
		scale := a.Len() * b.Len()
		if scale == 0 {
			return true
		}
		return abs32(c.Dot(a))/scale < 1e-3 && abs32(c.Dot(b))/scale < 1e-3
	}
	cfg := &quick.Config{MaxCount: 200, Values: smallVecValues(6)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Min/Max bracket both inputs component-wise.
func TestQuickMinMaxBracket(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float32) bool {
		a, b := New(ax, ay, az), New(bx, by, bz)
		lo, hi := a.Min(b), a.Max(b)
		for i := 0; i < 3; i++ {
			if lo.Axis(i) > a.Axis(i) || lo.Axis(i) > b.Axis(i) {
				return false
			}
			if hi.Axis(i) < a.Axis(i) || hi.Axis(i) < b.Axis(i) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Values: smallVecValues(6)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// smallVecValues generates n bounded float32 arguments so products stay
// within float32 precision for the property checks.
func smallVecValues(n int) func(args []reflect.Value, rand *rand.Rand) {
	return func(args []reflect.Value, rnd *rand.Rand) {
		for i := 0; i < n; i++ {
			args[i] = reflect.ValueOf(float32(rnd.Float64()*200 - 100))
		}
	}
}
