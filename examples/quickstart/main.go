// Quickstart: build a scene, trace a bounce of path-traced rays on the
// simulated GPU with the software baseline and with the DRS, and
// compare SIMD efficiency and performance — the paper's headline result
// in ~40 lines of API use.
package main

import (
	"fmt"
	"log"

	"repro/internal/bvh"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/render"
	"repro/internal/scene"
)

func main() {
	// 1. A benchmark scene and its BVH.
	s := scene.Generate(scene.ConferenceRoom, 20000)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Path-trace it on the CPU, capturing per-bounce ray streams.
	cam := render.CameraFor(scene.ConferenceRoom, 320, 240)
	res, err := render.Render(s, bv, cam, render.Config{
		Width: 320, Height: 240, SamplesPerPixel: 1, MaxDepth: 8, CaptureTraces: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	rays := res.Traces.Bounce(3).Rays // incoherent secondary rays
	fmt.Printf("bounce 3: %d rays, directional coherence %.2f\n",
		len(rays), res.Traces.Bounce(3).Coherence(32))

	// 3. Trace the stream on the simulated GTX780, both ways.
	data := kernels.NewSceneData(bv)
	opt := harness.DefaultOptions()
	for _, arch := range []harness.Arch{harness.ArchAila, harness.ArchDRS} {
		r, err := harness.Run(arch, rays, data, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s  SIMD efficiency %5.1f%%   %7.1f Mrays/s\n",
			arch, r.SIMDEff*100, r.Mrays)
	}
}
