// Pathtrace renders all four benchmark scenes to PPM images with the
// CPU path tracer — the workload generator behind every experiment.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/bvh"
	"repro/internal/render"
	"repro/internal/scene"
)

func main() {
	for _, b := range scene.Benchmarks {
		s := scene.Generate(b, 30000)
		bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		cam := render.CameraFor(b, 320, 240)
		res, err := render.Render(s, bv, cam, render.Config{
			Width: 320, Height: 240, SamplesPerPixel: 8, MaxDepth: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		name := fmt.Sprintf("%s.ppm", b)
		f, err := os.Create(name)
		if err != nil {
			log.Fatal(err)
		}
		if err := render.WritePPM(f, res.Image); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d triangles -> %s\n", b, len(s.Tris), name)
	}
}
