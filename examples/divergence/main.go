// Divergence reproduces the motivation of Figure 2 interactively: it
// traces every bounce of a conference-room render through the baseline
// kernel and prints how ray coherence and SIMD efficiency decay as rays
// bounce — the warp divergence problem the DRS exists to solve.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/bvh"
	"repro/internal/harness"
	"repro/internal/kernels"
	"repro/internal/render"
	"repro/internal/scene"
)

func main() {
	s := scene.Generate(scene.ConferenceRoom, 20000)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	cam := render.CameraFor(scene.ConferenceRoom, 256, 192)
	res, err := render.Render(s, bv, cam, render.Config{
		Width: 256, Height: 192, SamplesPerPixel: 1, MaxDepth: 8, CaptureTraces: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	data := kernels.NewSceneData(bv)
	opt := harness.DefaultOptions()

	fmt.Println("bounce  rays     coherence  SIMD-eff  bar")
	for b := 1; b <= 8; b++ {
		stream := res.Traces.Bounce(b)
		if len(stream.Rays) == 0 {
			break
		}
		r, err := harness.Run(harness.ArchAila, stream.Rays, data, opt)
		if err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("#", int(r.SIMDEff*40))
		fmt.Printf("B%d      %-8d %.3f      %5.1f%%    %s\n",
			b, len(stream.Rays), stream.Coherence(32), r.SIMDEff*100, bar)
	}
	fmt.Println("\nPrimary rays are coherent; bouncing randomizes them and SIMD efficiency collapses.")
	fmt.Println("Run examples/shuffle to watch the DRS repair it.")
}
