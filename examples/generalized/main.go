// Generalized demonstrates the paper's future-work sketch (§4.6):
// applying dynamic data shuffling to a divergent workload that has
// nothing to do with rays. A Monte Carlo task automaton (three phases
// with data-dependent durations) runs twice on the simulated GPU —
// once with fixed warp-to-task mapping, once under the generalized
// shuffler — and the SIMD efficiencies are compared, including a sweep
// of the §4.6 "release a warp once utilization is improved to some
// extent" relaxation.
package main

import (
	"fmt"
	"log"

	"repro/internal/gshuffle"
	"repro/internal/memsys"
	"repro/internal/simt"
)

func run(cfg gshuffle.Config, shuffle bool) (simt.Stats, gshuffle.Stats) {
	a := gshuffle.NewAutomaton(cfg, 42)
	scfg := simt.DefaultConfig()
	scfg.NumSMX = 1
	scfg.MaxWarpsPerSMX = cfg.Warps
	scfg.MaxCycles = 1 << 24
	l2 := memsys.NewL2(scfg.Mem)

	hooks := simt.Hooks{
		Gate: func(s *simt.SMX, warp int, now int64) simt.GateResult {
			if !a.WorkLeft() {
				return simt.GateExit
			}
			return simt.GateProceed
		},
	}
	var ctrl *gshuffle.Control
	if shuffle {
		var err error
		ctrl, err = gshuffle.NewControl(cfg, a)
		if err != nil {
			log.Fatal(err)
		}
		hooks = ctrl.Hooks()
	}
	smx, err := simt.NewSMX(0, scfg, a, hooks, l2)
	if err != nil {
		log.Fatal(err)
	}
	if shuffle {
		ctrl.Launch(smx)
	} else {
		smx.LaunchAll(0)
	}
	st, err := smx.Run()
	if err != nil {
		log.Fatal(err)
	}
	var cs gshuffle.Stats
	if ctrl != nil {
		cs = ctrl.Stats()
	}
	return st, cs
}

func main() {
	cfg := gshuffle.DefaultConfig()
	base, _ := run(cfg, false)
	fmt.Printf("fixed mapping:   SIMD efficiency %5.1f%%  %6d cycles\n",
		base.SIMDEfficiency(cfg.WarpSize)*100, base.Cycles)

	for _, frac := range []float64{1.0, 0.75, 0.5} {
		c := cfg
		c.ReleaseFraction = frac
		st, cs := run(c, true)
		fmt.Printf("shuffled @%.2f:  SIMD efficiency %5.1f%%  %6d cycles (%.2fx, %d swaps, %d partial binds)\n",
			frac, st.SIMDEfficiency(c.WarpSize)*100, st.Cycles,
			float64(base.Cycles)/float64(st.Cycles), cs.SwapsCompleted, cs.PartialBinds)
	}
	fmt.Println("\nThe same machinery that shuffles rays lifts any phase-divergent task system —")
	fmt.Println("the paper's §4.6 generalization. The release fraction trades uniformity against")
	fmt.Println("warp-release latency: 1.00 behaves like the DRS (purest rows), a moderate 0.75")
	fmt.Println("releases warps earlier and wins overall, and 0.50 gives the gains back.")
}
