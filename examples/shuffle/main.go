// Shuffle is a watchable walkthrough of the DRS machinery in the
// spirit of Figure 6: it runs a small DRS machine over an incoherent
// ray stream and periodically prints the ray state table — which rows
// are bound to warps, which states fill each row, and what the swap
// engine has done so far.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"repro/internal/bvh"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/kernels"
	"repro/internal/memsys"
	"repro/internal/scene"
	"repro/internal/simt"
	"repro/internal/vec"
)

func main() {
	s := scene.Generate(scene.ConferenceRoom, 8000)
	bv, err := bvh.Build(s.Tris, bvh.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	data := kernels.NewSceneData(bv)

	// An incoherent stream of rays inside the room.
	rnd := rand.New(rand.NewSource(7))
	rays := make([]geom.Ray, 4000)
	for i := range rays {
		o := vec.New(rnd.Float32()*18+1, rnd.Float32()*5+0.3, rnd.Float32()*10+1)
		d := vec.New(rnd.Float32()*2-1, rnd.Float32()*2-1, rnd.Float32()*2-1).Norm()
		rays[i] = geom.NewRay(o, d)
	}

	// A small DRS machine (6 warps, 9 rows) so the table is readable.
	cfg := core.DefaultConfig()
	cfg.WarpsOverride = 6
	scfg := simt.DefaultConfig()
	scfg.NumSMX = 1
	scfg.MaxWarpsPerSMX = cfg.Warps()
	scfg.MaxCycles = 1 << 26

	pool := &kernels.Pool{Rays: rays}
	k := kernels.NewWhileIf(data, pool, (cfg.Rows()-2)*32)
	ctrl, err := core.NewControl(cfg, k)
	if err != nil {
		log.Fatal(err)
	}
	l2 := memsys.NewL2(scfg.Mem)
	smx, err := simt.NewSMX(0, scfg, k, ctrl.Hooks(), l2)
	if err != nil {
		log.Fatal(err)
	}
	ctrl.Launch(smx)

	// Drive the machine in slices, printing the table between them.
	printed := 0
	for !doneAll(smx) {
		st := smx.Stats()
		if st.Cycles/2000 > int64(printed) {
			printed++
			printTable(smx, ctrl, k)
		}
		if err := stepSome(smx); err != nil {
			log.Fatal(err)
		}
	}
	printTable(smx, ctrl, k)
	st := smx.Stats()
	cs := ctrl.Stats()
	fmt.Printf("\ntraced %d rays in %d cycles: SIMD efficiency %.1f%%, %d batched swaps (mean %.1f cycles), %d warp remaps\n",
		len(rays), st.Cycles, st.SIMDEfficiency(32)*100,
		cs.SwapsCompleted, cs.MeanSwapCycles(), cs.Remaps)
}

// stepSome advances the SMX a bounded number of cycles.
func stepSome(smx *simt.SMX) error {
	return smx.RunFor(2000)
}

func doneAll(smx *simt.SMX) bool {
	return smx.LiveWarps() == 0
}

func printTable(smx *simt.SMX, ctrl *core.Control, k *kernels.WhileIf) {
	st := smx.Stats()
	fmt.Printf("\n== cycle %d  (eff %.1f%%, swaps %d, stalls %d) ==\n",
		st.Cycles, st.SIMDEfficiency(32)*100, ctrl.Stats().SwapsCompleted, st.CtrlStalls)
	glyph := map[kernels.State]byte{
		kernels.StateEmpty: '.',
		kernels.StateFetch: 'F',
		kernels.StateInner: 'I',
		kernels.StateLeaf:  'L',
	}
	rowOwner := make(map[int]int)
	for w := 0; w < smx.NumWarps(); w++ {
		if r := ctrl.WarpRow(w); r >= 0 {
			rowOwner[r] = w
		}
	}
	for r := 0; r < ctrl.RowCount(); r++ {
		var b strings.Builder
		for _, slot := range ctrl.RowSlots(r) {
			b.WriteByte(glyph[k.StateOf(slot)])
		}
		owner := "      "
		if w, ok := rowOwner[r]; ok {
			owner = fmt.Sprintf("warp %d", w)
		}
		fmt.Printf("row %2d  %s  %s\n", r, b.String(), owner)
	}
}
